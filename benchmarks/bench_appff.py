"""Benchmark: application fast-forward and adaptive sweep refinement.

Three legs, each asserting correctness before reporting a speedup:

* **lammps** / **cosmoflow** — the paper-scale jitter-free profiling
  runs, full simulation vs. steady-state fast-forward
  (:mod:`repro.des.fastforward`). Parity is asserted event-by-event
  over the whole trace before the speedup is recorded; the floor is
  5x (typical measured: tens of x, see docs/performance.md).
* **adaptive** — the adaptive slack sweep
  (:func:`repro.model.adaptive_slack_sweep`) against the dense sweep
  of the same 33-point grid: measured points must be bit-identical,
  predicted penalties within 0.1 pp of the dense ground truth, and the
  measured fraction at most 40% of the dense grid.

Results land in ``BENCH_appff.json`` at the repo root, next to
``BENCH_sweep.json`` and ``BENCH_trace.json``.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps import (
    CosmoFlowProfileConfig,
    LammpsProfileConfig,
    profile_cosmoflow,
    profile_lammps,
)
from repro.apps.lammps import LJParams
from repro.model import adaptive_slack_sweep
from repro.proxy import run_slack_sweep

#: Where the perf artifact lands (repo root, next to BENCH_trace.json).
APPFF_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_appff.json"

#: Minimum acceptable fast-forward speedup per application.
APPFF_SPEEDUP_FLOOR = 5.0

#: Adaptive acceptance: measured share of the dense grid / penalty tol.
ADAPTIVE_FRACTION_CEILING = 0.40
ADAPTIVE_TOL = 1e-3

#: Paper-scale jitter-free configs (jittered runs are ineligible by
#: design; the benchmark measures the eligible regime).
LAMMPS_CONFIG = LammpsProfileConfig(
    params=LJParams(box_size=120, steps=5000), jitter=0.0
)
COSMOFLOW_CONFIG = CosmoFlowProfileConfig(jitter=0.0)

#: Sections accumulated by the tests and flushed at module teardown.
_SECTIONS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_artifact():
    yield
    if not _SECTIONS:
        return
    doc = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    doc.update(_SECTIONS)
    APPFF_ARTIFACT.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _best_of(fn, repeats=3):
    """Best wall time of ``repeats`` runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _bench_app(name, profiler, config):
    full_s, full = _best_of(
        lambda: profiler(config, fast_forward=False), repeats=2
    )
    fast_s, fast = _best_of(
        lambda: profiler(config, fast_forward=True), repeats=3
    )
    # Parity before speedup: the fast-forwarded profile must be the
    # full profile, bit for bit — runtime, derived rate, every event.
    assert fast.fastforward is not None and fast.fastforward.certified
    assert fast.runtime_s == full.runtime_s
    assert fast.cuda_calls_per_second == full.cuda_calls_per_second
    assert len(fast.trace) == len(full.trace)
    assert list(fast.trace) == list(full.trace)
    speedup = full_s / fast_s
    _SECTIONS[name] = {
        "events": len(full.trace),
        "full_s": full_s,
        "fast_s": fast_s,
        "speedup": speedup,
        "speedup_floor": APPFF_SPEEDUP_FLOOR,
        "warmup_iterations": fast.fastforward.warmup_iterations,
        "skipped_iterations": fast.fastforward.skipped_iterations,
        "events_skipped": fast.fastforward.events_skipped,
    }
    assert speedup >= APPFF_SPEEDUP_FLOOR, (
        f"{name} fast-forward speedup {speedup:.1f}x below the "
        f"{APPFF_SPEEDUP_FLOOR:.0f}x floor"
    )


def test_bench_lammps_fastforward():
    _bench_app("lammps", profile_lammps, LAMMPS_CONFIG)


def test_bench_cosmoflow_fastforward():
    _bench_app("cosmoflow", profile_cosmoflow, COSMOFLOW_CONFIG)


def test_bench_adaptive_sweep():
    sizes = (2**9, 2**11, 2**13, 2**15)
    threads = (1, 2, 4, 8)
    grid = list(np.logspace(-6, -2, 33))

    dense_s, dense = _best_of(
        lambda: run_slack_sweep(
            matrix_sizes=sizes, slack_values_s=grid, threads=threads,
            iterations=40,
        ),
        repeats=1,
    )
    adaptive_s, res = _best_of(
        lambda: adaptive_slack_sweep(
            sizes, grid, threads=threads, iterations=40, tol=ADAPTIVE_TOL
        ),
        repeats=1,
    )
    # Correctness before economy: measured points bit-identical, every
    # predicted penalty within the certification tolerance of the
    # dense ground truth.
    for p in res.measured.points:
        assert p == dense.get(p.matrix_size, p.threads, p.slack_s)
    worst = 0.0
    for p in res.dense.points:
        if res.bounds[(p.matrix_size, p.threads, p.slack_s)] == 0.0:
            continue
        q = dense.get(p.matrix_size, p.threads, p.slack_s)
        worst = max(worst, abs(max(0.0, p.penalty) - max(0.0, q.penalty)))
    _SECTIONS["adaptive"] = {
        "grid_points_dense": res.dense_grid_points,
        "grid_points_measured": res.measured_grid_points,
        "measured_fraction": res.measured_fraction,
        "fraction_ceiling": ADAPTIVE_FRACTION_CEILING,
        "seed_points": res.seed_points,
        "refined_points": res.refined_points,
        "predicted_points": res.predicted_points,
        "tol": ADAPTIVE_TOL,
        "max_observed_error": res.max_error,
        "worst_predicted_deviation": worst,
        "dense_s": dense_s,
        "adaptive_s": adaptive_s,
        "speedup": dense_s / adaptive_s,
    }
    assert worst <= ADAPTIVE_TOL, (
        f"predicted penalties deviate {worst:.2e} from the dense "
        f"sweep, above the {ADAPTIVE_TOL:g} tolerance"
    )
    assert res.measured_fraction <= ADAPTIVE_FRACTION_CEILING, (
        f"adaptive sweep measured {res.measured_fraction:.0%} of the "
        f"dense grid, above the {ADAPTIVE_FRACTION_CEILING:.0%} ceiling"
    )
