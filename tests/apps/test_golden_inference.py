"""Golden artifacts for the inference-serving workload.

Two checked-in files pin the healthy path byte for byte:

* ``golden_inference_profile.json`` — the full profile document
  (name, runtime, call rate, every trace event) of one tiny fixed
  config, exactly as :class:`~repro.apps.AppProfileCache` would store
  it. A mismatch means the serving DES *behavior* changed.
* ``golden_inference_runreport.json`` — the deterministic projection
  of a metrics-on run's :class:`~repro.obs.RunReport`: the complete
  ``apps.inference`` section plus the SLO scalars. Wall-clock
  sections (``des`` heap stats, timer histograms) are machine-
  dependent and deliberately excluded; everything in the golden file
  is covered by the determinism contract.

Regenerate after an intentional behavior change with::

    PYTHONPATH=src python tests/apps/test_golden_inference.py
"""

import json
from pathlib import Path

from repro.apps.inference import (
    InferenceProfileConfig,
    profile_inference,
    run_inference,
)
from repro.apps.profilecache import _profile_doc
from repro.obs import RunReport, collecting

HERE = Path(__file__).parent
GOLDEN_PROFILE = HERE / "golden_inference_profile.json"
GOLDEN_REPORT = HERE / "golden_inference_runreport.json"

#: The registry's conformance config, spelled out so the golden files
#: do not silently move when the registry's defaults do.
CONFIG = InferenceProfileConfig(
    num_requests=8, prompt_tokens_mean=64, decode_tokens_mean=12
)

REGEN_HINT = (
    "golden file missing — regenerate with: "
    "PYTHONPATH=src python tests/apps/test_golden_inference.py"
)


def _profile_text() -> str:
    profile = profile_inference(CONFIG)
    return json.dumps(_profile_doc(profile), indent=1, sort_keys=True) + "\n"


def _report_projection() -> dict:
    """The deterministic slice of a metrics-on serving run."""
    with collecting() as reg:
        result = run_inference(CONFIG)
        report = RunReport.collect(
            reg, kind="inference", meta={"config": "conformance"}
        )
    slo = result.slo
    apps = report.metrics["apps.inference"]
    return {
        "kind": report.kind,
        "meta": report.meta,
        "apps": apps,
        "slo": {
            "requests": slo.requests,
            "makespan_s": slo.makespan_s,
            "ttft_p50_s": slo.ttft_p50_s,
            "ttft_p99_s": slo.ttft_p99_s,
            "ttft_max_s": slo.ttft_max_s,
            "tpot_mean_s": slo.tpot_mean_s,
            "tpot_p99_s": slo.tpot_p99_s,
            "ttft_violations": slo.ttft_violations,
            "tpot_violations": slo.tpot_violations,
        },
    }


def _report_text() -> str:
    return json.dumps(_report_projection(), indent=1, sort_keys=True) + "\n"


class TestGoldenProfile:
    def test_profile_matches_golden_bit_for_bit(self):
        assert GOLDEN_PROFILE.exists(), REGEN_HINT
        assert _profile_text() == GOLDEN_PROFILE.read_text()


class TestGoldenRunReport:
    def test_report_matches_golden_bit_for_bit(self):
        assert GOLDEN_REPORT.exists(), REGEN_HINT
        assert _report_text() == GOLDEN_REPORT.read_text()

    def test_projection_schema(self):
        doc = _report_projection()
        apps = doc["apps"]
        # Every published apps.inference.* metric is present, under
        # its section-relative name.
        for metric in (
            "runs",
            "requests",
            "batches",
            "ttft_violations",
            "tpot_violations",
            "prefill_tokens",
            "decode_steps",
            "kv_spilled_bytes",
            "kv_restored_bytes",
            "ttft_s",
            "tpot_s",
            "batch_occupancy",
            "queue_depth",
            "queue_high_water",
        ):
            assert metric in apps, metric
        assert apps["runs"] == 1
        assert apps["requests"] == CONFIG.num_requests
        assert apps["ttft_s"]["count"] == CONFIG.num_requests
        assert doc["slo"]["requests"] == CONFIG.num_requests

    def test_metrics_off_publishes_nothing(self):
        # The default path stays unobserved: no registry, no cost.
        result = run_inference(CONFIG)
        assert result.slo.requests == CONFIG.num_requests


if __name__ == "__main__":
    GOLDEN_PROFILE.write_text(_profile_text())
    GOLDEN_REPORT.write_text(_report_text())
    print(f"wrote {GOLDEN_PROFILE}")
    print(f"wrote {GOLDEN_REPORT}")
