"""Power accounting: the trapped-GPU energy argument.

The paper's introduction motivates CDI partly by power: GPUs trapped
in traditional allocations "can't be turned off or scheduled for other
jobs", whereas a CDI chassis powers down unallocated devices. This
module quantifies that for any :class:`ScheduleOutcome` pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from .scheduler import ScheduleOutcome

__all__ = ["PowerModel", "PowerComparison", "compare_power"]

#: A100-SXM4 board power at idle (clocks parked, HBM refreshed).
A100_IDLE_W = 55.0
#: EPYC-class per-core idle draw attributable to an unused core.
CORE_IDLE_W = 1.5


@dataclass(frozen=True)
class PowerModel:
    """Idle-power coefficients for trapped resources."""

    gpu_idle_w: float = A100_IDLE_W
    core_idle_w: float = CORE_IDLE_W

    def __post_init__(self) -> None:
        if self.gpu_idle_w < 0 or self.core_idle_w < 0:
            raise ValueError("idle powers must be non-negative")

    def trapped_power_w(self, outcome: ScheduleOutcome) -> float:
        """Watts burned by trapped (allocated-but-unused) resources."""
        return (
            outcome.trapped_gpus * self.gpu_idle_w
            + outcome.trapped_cores * self.core_idle_w
        )


@dataclass(frozen=True)
class PowerComparison:
    """Trapped-resource power of two scheduling outcomes."""

    traditional_w: float
    cdi_w: float

    @property
    def saved_w(self) -> float:
        """Watts CDI saves by powering down what it does not allocate."""
        return self.traditional_w - self.cdi_w

    def saved_kwh(self, hours: float) -> float:
        """Energy saved over a job duration."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        return self.saved_w * hours / 1000.0


def compare_power(
    traditional: ScheduleOutcome,
    cdi: ScheduleOutcome,
    model: PowerModel = PowerModel(),
) -> PowerComparison:
    """Trapped-power comparison for a pair of scheduling outcomes."""
    return PowerComparison(
        traditional_w=model.trapped_power_w(traditional),
        cdi_w=model.trapped_power_w(cdi),
    )
