"""The composer: turns resource requests into compositions.

Given "this job needs C cores and G GPUs", the composer carves cores
from CPU nodes and GPUs from chassis — packing GPUs into as few
chassis as possible (GPU-to-GPU collectives prefer tight coupling,
the paper's CosmoFlow argument) and cores into as few nodes as
possible (NUMA locality).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .resources import Composition, GPUChassis, ResourcePool

__all__ = ["CompositionError", "Composer"]


class CompositionError(RuntimeError):
    """Raised when a request cannot be satisfied by the pool."""


class Composer:
    """Allocates compositions from a :class:`ResourcePool`."""

    def __init__(self, pool: ResourcePool) -> None:
        self.pool = pool
        self.active: Dict[int, Composition] = {}

    def compose(self, job: str, cores: int, gpus: int = 0) -> Composition:
        """Compose exactly ``cores`` CPU cores and ``gpus`` GPUs.

        Raises
        ------
        CompositionError
            If the free inventory cannot satisfy the request. The pool
            is left unchanged on failure (all-or-nothing).
        """
        if cores <= 0:
            raise ValueError("cores must be positive")
        if gpus < 0:
            raise ValueError("gpus must be non-negative")
        if cores > self.pool.free_cores:
            raise CompositionError(
                f"{job}: requested {cores} cores, {self.pool.free_cores} free"
            )
        if gpus > self.pool.free_gpus:
            raise CompositionError(
                f"{job}: requested {gpus} GPUs, {self.pool.free_gpus} free"
            )

        composition = Composition(job=job)
        # Cores: best-fit decreasing — prefer nodes that can host the
        # whole remainder, else take the fullest partial fits.
        remaining = cores
        for node in sorted(
            self.pool.nodes.values(), key=lambda n: -n.free_cores
        ):
            if remaining == 0:
                break
            take = min(node.free_cores, remaining)
            if take > 0:
                node.allocate(take)
                composition.cores[node.node_id] = take
                remaining -= take
        if remaining > 0:  # pragma: no cover - guarded by free_cores check
            self._rollback(composition)
            raise CompositionError(f"{job}: core allocation fell short")

        # GPUs: pack into the fewest chassis (prefer one that fits all).
        remaining = gpus
        chassis_order = self._gpu_packing_order(gpus)
        for chassis in chassis_order:
            if remaining == 0:
                break
            take = min(chassis.free_gpus, remaining)
            if take > 0:
                composition.gpus[chassis.chassis_id] = chassis.allocate(take)
                remaining -= take
        if remaining > 0:  # pragma: no cover - guarded by free_gpus check
            self._rollback(composition)
            raise CompositionError(f"{job}: GPU allocation fell short")

        self.active[composition.composition_id] = composition
        return composition

    def release(self, composition: Composition) -> None:
        """Return a composition's resources to the pool."""
        if composition.composition_id not in self.active:
            raise ValueError(f"composition {composition.composition_id} not active")
        self._rollback(composition)
        del self.active[composition.composition_id]

    # -- internals ------------------------------------------------------------------
    def _gpu_packing_order(self, gpus: int) -> List[GPUChassis]:
        full_fit = [
            c for c in self.pool.chassis.values() if c.free_gpus >= gpus > 0
        ]
        if full_fit:
            # The tightest chassis that fits everything.
            rest = [
                c for c in self.pool.chassis.values() if c not in full_fit
            ]
            return sorted(full_fit, key=lambda c: c.free_gpus) + rest
        return sorted(self.pool.chassis.values(), key=lambda c: -c.free_gpus)

    def _rollback(self, composition: Composition) -> None:
        for node_id, cores in composition.cores.items():
            self.pool.nodes[node_id].release(cores)
        for chassis_id, slots in composition.gpus.items():
            self.pool.chassis[chassis_id].release(slots)
        composition.cores.clear()
        composition.gpus.clear()
