"""The unit of parallel sweep work: one (config, slack) proxy run.

A sweep grid decomposes into independent *point tasks* — every
``(ProxyConfig, slack)`` pair is one deterministic DES run with no
shared state — which is what lets :class:`~repro.parallel.SweepExecutor`
fan a grid out over worker processes and cache each measurement
individually.

:func:`measure_point` is the worker entry point. It must stay a
module-level function (``ProcessPoolExecutor`` pickles it by reference)
and must return only plain scalars (the full :class:`~repro.trace.Trace`
of a run is deliberately dropped: it is large, and the sweep layer only
consumes the aggregate runtimes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..faults import FabricTimeoutError, FaultPlan
from ..hw import OutOfMemoryError
from ..network import SlackModel
from ..proxy.matmul import ProxyConfig, run_proxy

__all__ = ["PointTask", "PointMeasurement", "measure_point"]


@dataclass(frozen=True)
class PointTask:
    """One grid point to measure: a proxy config plus a slack value.

    ``slack_s == 0.0`` is the zero-slack baseline run of its
    configuration (executed with ``SlackModel.none()``, exactly like
    the sequential sweep's baseline).
    """

    config: ProxyConfig
    slack_s: float
    #: Pre-computed single-kernel duration: the sweep hoists the
    #: calibration mini-simulation out of the per-point workers so
    #: every point of one matrix size shares it (and so cached and
    #: fast-forwarded points agree on ``iterations``). ``None`` means
    #: the worker calibrates itself (direct ``measure_point`` use).
    kernel_time_s: Optional[float] = None
    #: Steady-state fast-forward knob, passed through to
    #: :func:`repro.proxy.run_proxy`. ``None`` = the proxy's default
    #: (on). Not part of the cache key: fast-forwarded results are
    #: bit-identical to full simulations by construction.
    fast_forward: Optional[bool] = None
    #: Optional :class:`~repro.faults.FaultPlan` degrading this point's
    #: fabric. Part of the cache key (a degraded point is a different
    #: measurement); picklable, so it rides to pool workers unchanged.
    faults: Optional[FaultPlan] = None


@dataclass(frozen=True)
class PointMeasurement:
    """Scalar outcome of one point task (picklable, JSON-serializable).

    ``ok=False`` records a deterministic failure — in practice the
    proxy's out-of-memory rejection of configurations whose matrices
    exceed device memory — with the error message in ``error``.
    ``elapsed_s`` is the host wall-clock time the measurement took
    (``time.perf_counter``), which the executor aggregates into the
    sweep's points/sec and speedup-vs-sequential statistics.
    """

    ok: bool
    error: str = ""
    loop_runtime_s: float = 0.0
    corrected_runtime_s: float = 0.0
    iterations: int = 0
    kernel_time_s: float = 0.0
    injected_slack_s: float = 0.0
    starvation_cost_s: float = 0.0
    elapsed_s: float = 0.0
    #: Flat simulator telemetry of the run (dotted ``des.*``/``gpu.*``/
    #: ``fabric.*`` names, see repro.obs). Shipped back from pool
    #: workers and persisted in the point cache, so run reports cover
    #: cached points too. Excluded from equality: two measurements of
    #: the same point are the same result regardless of telemetry.
    sim: Dict[str, float] = field(default_factory=dict, compare=False)
    #: Fast-forward telemetry (compare=False for the same reason as
    #: ``sim``: a fast-forwarded measurement equals the full one).
    #: ``fastforward_hit`` — the run was certified and extrapolated;
    #: ``fastforward_events_skipped`` — DES events not simulated;
    #: ``fastforward_reason`` — refusal/fallback reason when not a hit.
    fastforward_hit: bool = field(default=False, compare=False)
    fastforward_events_skipped: int = field(default=0, compare=False)
    fastforward_reason: str = field(default="", compare=False)

    def to_doc(self) -> Dict[str, Any]:
        """Plain-dict form for the on-disk point cache."""
        return {
            "ok": self.ok,
            "error": self.error,
            "loop_runtime_s": self.loop_runtime_s,
            "corrected_runtime_s": self.corrected_runtime_s,
            "iterations": self.iterations,
            "kernel_time_s": self.kernel_time_s,
            "injected_slack_s": self.injected_slack_s,
            "starvation_cost_s": self.starvation_cost_s,
            "elapsed_s": self.elapsed_s,
            "sim": dict(self.sim),
            "fastforward_hit": self.fastforward_hit,
            "fastforward_events_skipped": self.fastforward_events_skipped,
            "fastforward_reason": self.fastforward_reason,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "PointMeasurement":
        """Rebuild a measurement from its cached dict form."""
        return cls(
            ok=bool(doc["ok"]),
            error=str(doc.get("error", "")),
            loop_runtime_s=float(doc.get("loop_runtime_s", 0.0)),
            corrected_runtime_s=float(doc.get("corrected_runtime_s", 0.0)),
            iterations=int(doc.get("iterations", 0)),
            kernel_time_s=float(doc.get("kernel_time_s", 0.0)),
            injected_slack_s=float(doc.get("injected_slack_s", 0.0)),
            starvation_cost_s=float(doc.get("starvation_cost_s", 0.0)),
            elapsed_s=float(doc.get("elapsed_s", 0.0)),
            sim={
                str(k): float(v) for k, v in doc.get("sim", {}).items()
            },
            fastforward_hit=bool(doc.get("fastforward_hit", False)),
            fastforward_events_skipped=int(
                doc.get("fastforward_events_skipped", 0)
            ),
            fastforward_reason=str(doc.get("fastforward_reason", "")),
        )


def measure_point(task: PointTask) -> PointMeasurement:
    """Run one proxy grid point and reduce it to scalars.

    Out-of-memory configurations (the paper's 2^15 exclusion above 2
    threads) and fault-plan fabric timeouts come back as ``ok=False``
    measurements rather than exceptions so a worker pool never tears
    down mid-grid (both are deterministic verdicts of the point, safe
    to cache); any other exception is a genuine bug and propagates.
    """
    slack = SlackModel.none() if task.slack_s == 0.0 else SlackModel(task.slack_s)
    t0 = time.perf_counter()
    try:
        run = run_proxy(
            task.config,
            slack,
            kernel_time_s=task.kernel_time_s,
            fast_forward=task.fast_forward,
            faults=task.faults,
        )
    except OutOfMemoryError as exc:
        return PointMeasurement(
            ok=False, error=str(exc), elapsed_s=time.perf_counter() - t0
        )
    except FabricTimeoutError as exc:
        return PointMeasurement(
            ok=False,
            error=f"fabric-timeout: {exc}",
            elapsed_s=time.perf_counter() - t0,
        )
    ff = run.fastforward
    return PointMeasurement(
        ok=True,
        loop_runtime_s=run.loop_runtime_s,
        corrected_runtime_s=run.corrected_runtime_s,
        iterations=run.iterations,
        kernel_time_s=run.kernel_time_s,
        injected_slack_s=run.injected_slack_s,
        starvation_cost_s=run.starvation_cost_s,
        elapsed_s=time.perf_counter() - t0,
        sim=run.sim_metrics,
        fastforward_hit=bool(ff is not None and ff.certified),
        fastforward_events_skipped=ff.events_skipped if ff is not None else 0,
        fastforward_reason=(ff.reason or "") if ff is not None else "",
    )
