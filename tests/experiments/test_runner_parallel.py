"""Tests for parallel experiment execution in run_all."""

import pytest

from repro.experiments import ExperimentContext, run_all, run_experiment
from repro.experiments.runner import experiment_ids
from repro.parallel import fork_available


class TestRunAllParallel:
    @pytest.fixture(scope="class")
    def shared_cache(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cache")

    def test_workers_one_is_sequential(self, shared_cache):
        ctx = ExperimentContext(quick=True, cache_dir=shared_cache)
        results = run_all(ctx, workers=1)
        assert [r.experiment_id for r in results] == experiment_ids()

    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    def test_parallel_matches_sequential(self, shared_cache):
        ctx = ExperimentContext(quick=True, cache_dir=shared_cache)
        results = run_all(ctx, workers=2)
        # Registry order regardless of completion order.
        assert [r.experiment_id for r in results] == experiment_ids()
        # Spot-check determinism: a worker-produced artifact renders
        # identically to one computed in this process from the same
        # disk caches.
        direct = run_experiment("table1", ctx)
        parallel_table1 = results[experiment_ids().index("table1")]
        assert parallel_table1.render() == direct.render()
