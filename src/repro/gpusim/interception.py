"""Slack injection at the CUDA API boundary.

The paper's method inserts an artificial delay *after every CUDA API
call* that implies host-device communication, emulating the NIC and
fabric traversal a row-scale CDI system adds (their software
alternative to LD_PRELOAD shims, which fail for statically linked
binaries). :class:`SlackInjector` is that insertion point in the
simulator: the runtime yields through it after each API call, and the
delay is recorded in the trace so Equation 1 can later subtract the
direct cost.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from ..des import Environment, Event
from ..network import SlackModel
from ..trace import EventKind, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultInjector

__all__ = ["SlackInjector"]


class SlackInjector:
    """Injects the per-call slack delay and accounts for it.

    Parameters
    ----------
    env, tracer:
        Simulation environment and the tracer slack events go to.
    model:
        The :class:`SlackModel` supplying per-call delays. Replaceable
        at runtime (sweeps re-use one simulator setup).
    faults:
        Optional compiled :class:`~repro.faults.FaultInjector`. When
        set, every intercepted call first passes through the fault
        layer (down-window waits, loss retries, spike extras) *before*
        the base slack delay — the fabric is degraded even for the
        zero-slack baseline. ``None`` (default) costs one ``is None``
        check per call.
    """

    def __init__(
        self,
        env: Environment,
        tracer: Tracer,
        model: Optional[SlackModel] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.env = env
        self.tracer = tracer
        self.model = model or SlackModel.none()
        self.faults = faults
        self.calls_intercepted = 0

    @property
    def total_injected_s(self) -> float:
        """Total delay injected so far (for Equation 1)."""
        return self.model.total_injected_s

    @property
    def calls_delayed(self) -> int:
        """Number of calls that received a delay."""
        return self.model.calls_delayed

    def after_call(
        self, api_name: str, thread: int = 0
    ) -> Generator[Event, Any, float]:
        """Sleep the calling host thread for one sampled slack delay.

        Returns the injected slack delay so callers can account
        per-call (fault-induced delay is accounted separately, inside
        the fault injector — it must not enter Equation 1's
        ``n_calls * slack`` subtraction).
        """
        self.calls_intercepted += 1
        if self.faults is not None:
            # Faults precede the is_zero fast path on purpose: a
            # degraded fabric perturbs the zero-slack baseline too.
            yield from self.faults.perturb_call(api_name)
        if self.model.is_zero:
            return 0.0
        delay = self.model.sample()
        if delay <= 0.0:
            return 0.0
        start = self.env.now
        yield self.env.timeout(delay)
        self.tracer.record(
            EventKind.SLACK,
            f"slack:{api_name}",
            start,
            self.env.now,
            thread=thread,
            meta={"api": api_name},
        )
        return delay
