"""GPU API remoting (rCUDA-style) — the related-work comparator.

The paper's Related Work discusses remoting solutions like rCUDA,
which run GPUs from hosts outside the PCIe domain by forwarding each
CUDA call over the network. Remoting differs from CDI in *what*
crosses the network:

* **CDI** extends the PCIe fabric: data still moves host-to-GPU at
  PCIe-class bandwidth, and only *latency* (slack) is added per call;
* **remoting** is an RPC layer: every call pays an RPC round trip,
  and every memcpy's payload is carried by the *network*, so
  bandwidth drops from PCIe's ~25.6 GB/s to the NIC's line rate.

:func:`make_remoting_runtime` builds a :class:`CudaRuntime` with that
cost structure, letting the proxy compare CDI against remoting on the
same workload (the paper's reason for rejecting remoting as a slack
*measurement* tool was controllability, but the performance contrast
is what a deployer cares about).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, TYPE_CHECKING

from ..des import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan
from ..hw import A100_SXM4_40GB, GPUSpec, PCIE_GEN4_X16, PCIeSpec
from ..network import SlackModel
from ..trace import Tracer
from .runtime import CudaRuntime

__all__ = ["RemotingSpec", "make_remoting_runtime"]


@dataclass(frozen=True)
class RemotingSpec:
    """Cost structure of an API-remoting deployment."""

    rpc_latency_s: float = 5.0e-6
    network_bandwidth_Bps: float = 12.5e9  # 100 Gb/s NIC
    per_call_overhead_s: float = 2.0e-6  # marshalling/unmarshalling

    def __post_init__(self) -> None:
        if self.rpc_latency_s < 0 or self.per_call_overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.network_bandwidth_Bps <= 0:
            raise ValueError("network_bandwidth_Bps must be positive")

    @property
    def effective_bandwidth_Bps(self) -> float:
        """Payload bandwidth available to forwarded memcpys."""
        return self.network_bandwidth_Bps

    def as_link_spec(self, pcie: PCIeSpec = PCIE_GEN4_X16) -> PCIeSpec:
        """The host link a remoted GPU effectively presents.

        Bandwidth is the smaller of PCIe and the network (the transfer
        crosses both); latency gains the RPC hop.
        """
        effective = min(pcie.effective_bandwidth_Bps, self.network_bandwidth_Bps)
        # Express the bandwidth cap through the efficiency knob so the
        # lane/rate bookkeeping stays honest.
        efficiency = effective / pcie.raw_bandwidth_Bps
        return replace(
            pcie,
            efficiency=min(1.0, efficiency),
            latency_s=pcie.latency_s + self.rpc_latency_s,
        )


def make_remoting_runtime(
    env: Environment,
    spec: Optional[RemotingSpec] = None,
    gpu: GPUSpec = A100_SXM4_40GB,
    pcie: PCIeSpec = PCIE_GEN4_X16,
    tracer: Optional[Tracer] = None,
    faults: Optional["FaultPlan"] = None,
) -> CudaRuntime:
    """A :class:`CudaRuntime` with rCUDA-style remoting costs.

    Per-call RPC latency arrives through the slack injector (it is a
    per-call delay, exactly like CDI slack); the bandwidth cap and the
    latency on the data path arrive through the link spec; call
    marshalling inflates the API overhead. ``faults`` (a
    :class:`~repro.faults.FaultPlan`) degrades the RPC transport: each
    forwarded call is subject to the plan's down-windows, message loss
    with retry/backoff/timeout, and latency spikes — remoting forwards
    *every* call over the network, so a flaky fabric hits it on every
    API crossing, not just on memcpys.
    """
    spec = spec or RemotingSpec()
    return CudaRuntime(
        env,
        gpu=gpu,
        pcie=spec.as_link_spec(pcie),
        tracer=tracer,
        slack=SlackModel(spec.rpc_latency_s),
        api_overhead_s=1.5e-6 + spec.per_call_overhead_s,
        faults=faults.compile(env) if faults is not None else None,
    )
