"""The serving surrogate: parity, bounds, and the refusing domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    BOUND_SAFETY_FACTOR,
    PCHIP_AVAILABLE,
    TrainingSeries,
    crossval_bounds,
    extract_training_series,
    interp_penalty,
)
from repro.serve import (
    REFUSAL_REASONS,
    SurrogateDomainError,
    SurrogateModel,
    assert_parity,
)

from .conftest import SIZES, SLACKS, THREADS, make_sweep, penalty_law


# -- training extraction ------------------------------------------------------

def test_extract_training_series_from_all_sources(sweep, surface):
    """Sweep, surface, and raw point list all train identically."""
    by_sweep = extract_training_series(sweep)
    by_surface = extract_training_series(surface)
    by_points = extract_training_series(list(sweep.points))
    assert len(by_sweep) == len(SIZES) * len(THREADS)
    for a, b, c in zip(by_sweep, by_surface, by_points):
        assert (a.matrix_size, a.threads) == (b.matrix_size, b.threads)
        np.testing.assert_array_equal(a.slacks, b.slacks)
        np.testing.assert_array_equal(a.penalties, c.penalties)
        assert a.viable


def test_training_series_sorted_and_positive(sweep):
    for ts in extract_training_series(sweep):
        assert (np.diff(ts.slacks) > 0).all()
        assert (ts.slacks > 0).all()
        assert (ts.penalties >= 0).all()
        assert len(ts.interval_bounds) == len(ts.slacks) - 1


def test_crossval_bounds_zero_for_exactly_loglinear_data():
    """Data that *is* log-linear cross-validates to (near-)zero bounds."""
    slacks = np.logspace(-6, -3, 9)
    x = np.log(slacks)
    penalties = 3.0 + 2.0 * (x - x[0])
    bounds = crossval_bounds(slacks, penalties)
    assert bounds.shape == (8,)
    assert (bounds < 1e-9).all()


def test_crossval_bounds_cover_interior_curvature():
    """Convex data: every interior LOO deviation fits its own bound."""
    slacks = np.logspace(-6, -3, 9)
    penalties = 50.0 * (slacks / 1e-3) ** 0.8
    bounds = crossval_bounds(slacks, penalties)
    for j in range(1, 8):
        loo = interp_penalty(
            slacks[j - 1], penalties[j - 1],
            slacks[j + 1], penalties[j + 1],
            slacks[j],
        )
        dev = abs(loo - penalties[j])
        assert dev <= max(bounds[j - 1], bounds[j])


def test_short_series_bounds_are_infinite():
    slacks = np.array([1e-5, 1e-4])
    bounds = crossval_bounds(slacks, np.array([1.0, 2.0]))
    assert np.isinf(bounds).all()


# -- parity with the surface --------------------------------------------------

def test_parity_at_every_measured_point(model, surface):
    checked = assert_parity(model, surface)
    assert checked == len(SIZES) * len(THREADS) * len(SLACKS)


def test_interior_predictions_match_surface_rule(model, surface):
    rng = np.random.default_rng(3)
    for _ in range(100):
        n = int(rng.choice(SIZES))
        t = int(rng.choice(THREADS))
        s = float(10 ** rng.uniform(-6.5, -3.0))
        assert model.predict(n, s, t).penalty == pytest.approx(
            surface.penalty(n, s, t), abs=1e-12
        )


def test_zero_slack_is_free(model):
    got = model.predict(512, 0.0, 1)
    assert got.penalty == 0.0 and got.bound == 0.0


def test_below_grid_ramp_matches_surface(model, surface):
    s = float(SLACKS[0]) / 7.0
    assert model.predict(512, s, 1).penalty == pytest.approx(
        surface.penalty(512, s, 1), abs=1e-15
    )


def test_quantization_snap_hits_measured_point(model):
    """A query within the shared tolerance answers exactly, bound 0."""
    s = float(SLACKS[3])
    got = model.predict(512, s * (1 + 5e-10), 1)
    assert got.penalty == penalty_law(512, 1, s)
    assert got.bound == 0.0


# -- the refusing domain ------------------------------------------------------

@pytest.mark.parametrize(
    "query, reason",
    [
        ((4096, 1, 1e-4), "unknown-series"),
        ((512, 3, 1e-4), "unknown-series"),
        ((512, 1, -1e-6), "negative-slack"),
        ((512, 1, float(SLACKS[-1]) * 10), "above-grid"),
    ],
)
def test_refusals_raise_typed_with_reason(model, query, reason):
    n, t, s = query
    with pytest.raises(SurrogateDomainError) as exc:
        model.predict(n, s, t)
    assert exc.value.reason == reason
    assert exc.value.reason in REFUSAL_REASONS
    assert exc.value.query == (n, t, s)


def test_degenerate_series_refuses():
    sweep = make_sweep(sizes=(512,), threads=(1,), slacks=(1e-4,))
    one_point = SurrogateModel.fit(sweep)
    with pytest.raises(SurrogateDomainError) as exc:
        one_point.predict(512, 1e-4, 1)
    assert exc.value.reason == "degenerate-series"


def test_evaluate_refuses_without_raising(model):
    pen, bound, reason = model.evaluate(
        [512, 4096, 512], [1, 1, 1], [1e-4, 1e-4, -1.0]
    )
    assert reason.tolist() == [0, 1, 3]
    assert np.isfinite(pen[0]) and np.isfinite(bound[0])
    assert np.isnan(pen[1:]).all() and np.isnan(bound[1:]).all()
    assert model.reason_name(1) == "unknown-series"
    assert model.reason_name(0) is None


def test_refusals_are_tallied(sweep):
    fresh = SurrogateModel.fit(sweep)
    for _ in range(3):
        with pytest.raises(SurrogateDomainError):
            fresh.predict(4096, 1e-4, 1)
    assert fresh.refusals["unknown-series"] == 3


def test_domain_is_machine_readable(model):
    dom = model.domain()
    assert dom["method"] == "loglinear"
    assert dom["refusal_reasons"] == list(REFUSAL_REASONS)
    assert len(dom["series"]) == len(SIZES) * len(THREADS)
    for entry in dom["series"]:
        assert entry["points"] == len(SLACKS)
        assert entry["slack_min_s"] == pytest.approx(float(SLACKS[0]))
        assert entry["slack_max_s"] == pytest.approx(float(SLACKS[-1]))
        assert entry["worst_bound"] >= 0.0


# -- online refinement --------------------------------------------------------

def test_observe_makes_a_region_warm(sweep):
    fresh = SurrogateModel.fit(sweep)
    with pytest.raises(SurrogateDomainError):
        fresh.predict(1024, 1e-4, 1)
    fresh.observe(1024, 1, 5e-5, 1.0)
    fresh.observe(1024, 1, 1e-4, 2.0)
    got = fresh.predict(1024, 1e-4, 1)
    assert got.penalty == 2.0
    assert fresh.observed_points == 2
    assert fresh.series_points(1024, 1) == 2


def test_observe_ignores_nonpositive_slack(sweep):
    fresh = SurrogateModel.fit(sweep)
    fresh.observe(1024, 1, 0.0, 1.0)
    fresh.observe(1024, 1, -1e-5, 1.0)
    assert fresh.observed_points == 0


# -- pchip method -------------------------------------------------------------

@pytest.mark.skipif(not PCHIP_AVAILABLE, reason="scipy unavailable")
def test_pchip_keeps_measured_point_parity(sweep, surface):
    pchip = SurrogateModel.fit(sweep, method="pchip")
    assert assert_parity(pchip, surface) == len(SIZES) * len(THREADS) * len(
        SLACKS
    )


@pytest.mark.skipif(not PCHIP_AVAILABLE, reason="scipy unavailable")
def test_pchip_interior_is_monotone_between_points(sweep):
    pchip = SurrogateModel.fit(sweep, method="pchip")
    s = np.ascontiguousarray(np.geomspace(SLACKS[0], SLACKS[-1], 200))
    pen, _, reason = pchip.evaluate(
        np.full(len(s), 512), np.ones(len(s), dtype=int), s
    )
    assert (reason == 0).all()
    assert (np.diff(pen) >= -1e-12).all()


def test_pchip_falls_back_when_scipy_missing(sweep, monkeypatch):
    monkeypatch.setattr("repro.serve.surrogate.PCHIP_AVAILABLE", False)
    downgraded = SurrogateModel.fit(sweep, method="pchip")
    assert downgraded.method == "loglinear"
    assert any("scipy" in note for note in downgraded.notes)


def test_unknown_method_rejected(sweep):
    with pytest.raises(ValueError, match="method"):
        SurrogateModel.fit(sweep, method="spline")


# -- property tests -----------------------------------------------------------

class TestHeldOutWithinBound:
    """A held-out in-domain measurement falls within the reported bound.

    The bound is a cross-validated sampling estimate (windowed LOO
    deviation x safety), not a proof — these properties pin it on
    smooth monotone penalty laws of the shape the DES produces.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        scale=st.floats(min_value=0.1, max_value=50.0),
        exponent=st.floats(min_value=0.6, max_value=1.4),
        drop=st.integers(min_value=2, max_value=6),
    )
    def test_power_law(self, scale, exponent, drop):
        slacks = np.logspace(-6, -3, 9)
        law = lambda s: scale * (s / 1e-3) ** exponent
        kept = [s for j, s in enumerate(slacks) if j != drop]
        series = TrainingSeries(
            matrix_size=512,
            threads=1,
            slacks=np.array(kept),
            penalties=np.array([law(s) for s in kept]),
            interval_bounds=crossval_bounds(
                np.array(kept), np.array([law(s) for s in kept])
            ),
        )
        surrogate = SurrogateModel(series=[series])
        held_out = float(slacks[drop])
        got = surrogate.predict(512, held_out, 1)
        assert abs(got.penalty - law(held_out)) <= got.bound

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_synthetic_surface_series(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.choice(SIZES))
        t = int(rng.choice(THREADS))
        drop = int(rng.integers(1, len(SLACKS) - 1))
        kept_slacks = tuple(
            s for j, s in enumerate(SLACKS) if j != drop
        )
        sweep = make_sweep(sizes=(n,), threads=(t,), slacks=kept_slacks)
        surrogate = SurrogateModel.fit(sweep)
        held_out = float(SLACKS[drop])
        got = surrogate.predict(n, held_out, t)
        assert abs(got.penalty - penalty_law(n, t, held_out)) <= got.bound


class TestOutOfDomainAlwaysRefuses:
    @settings(max_examples=30, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=100_000),
        threads=st.integers(min_value=1, max_value=64),
        slack=st.floats(
            min_value=1e-9, max_value=1.0, allow_nan=False
        ),
    )
    def test_unknown_series_or_above_grid(self, model, size, threads, slack):
        in_series = size in SIZES and threads in THREADS
        above = slack > float(SLACKS[-1]) * (1 + 1e-6)
        if in_series and not above:
            return  # in-domain; covered by the parity tests
        with pytest.raises(SurrogateDomainError) as exc:
            model.predict(size, slack, threads)
        expected = "above-grid" if in_series else "unknown-series"
        assert exc.value.reason == expected

    @settings(max_examples=20, deadline=None)
    @given(slack=st.floats(min_value=-1.0, max_value=-1e-12))
    def test_negative_slack(self, model, slack):
        with pytest.raises(SurrogateDomainError) as exc:
            model.predict(512, slack, 1)
        assert exc.value.reason == "negative-slack"


def test_bound_safety_factor_exported():
    assert BOUND_SAFETY_FACTOR == 2.0
