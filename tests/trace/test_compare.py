"""Tests for trace comparison (baseline vs slack-run diffing)."""

import pytest

from repro.network import SlackModel
from repro.proxy import ProxyConfig, run_proxy
from repro.trace import (
    CopyKind,
    EventKind,
    Trace,
    TraceEvent,
    compare_traces,
)


def kernel(name, start, end, starvation=0.0):
    return TraceEvent(EventKind.KERNEL, name, start, end,
                      meta={"starvation_cost": starvation})


class TestCompareTraces:
    def test_identical_traces_zero_delta(self):
        t = Trace([kernel("k", 0, 1), kernel("k", 2, 3)])
        cmp = compare_traces(t, t)
        assert cmp.wall_delta_s == 0.0
        assert cmp.direct_slack_s == 0.0
        assert cmp.delta("k").ratio == pytest.approx(1.0)

    def test_kernel_deltas_by_name(self):
        base = Trace([kernel("a", 0, 1), kernel("b", 1, 2)])
        other = Trace([kernel("a", 0, 2), kernel("b", 2, 3)])
        cmp = compare_traces(base, other)
        assert cmp.delta("a").ratio == pytest.approx(2.0)
        assert cmp.delta("b").ratio == pytest.approx(1.0)
        with pytest.raises(KeyError):
            cmp.delta("missing")

    def test_one_sided_kernel_reported(self):
        base = Trace([kernel("a", 0, 1)])
        other = Trace([kernel("a", 0, 1), kernel("new", 1, 2)])
        cmp = compare_traces(base, other)
        d = cmp.delta("new")
        assert d.baseline_count == 0
        assert d.other_count == 1
        assert d.ratio == float("inf")

    def test_direct_slack_summed_from_slack_events(self):
        base = Trace([kernel("k", 0, 1)])
        other = Trace([kernel("k", 0, 1)])
        other.append(TraceEvent(EventKind.SLACK, "slack:x", 1.0, 1.5))
        other.append(TraceEvent(EventKind.SLACK, "slack:y", 2.0, 2.25))
        cmp = compare_traces(base, other)
        assert cmp.direct_slack_s == pytest.approx(0.75)

    def test_starvation_delta_from_kernel_meta(self):
        base = Trace([kernel("k", 0, 1, starvation=0.001)])
        other = Trace([kernel("k", 0, 1.1, starvation=0.101)])
        cmp = compare_traces(base, other)
        assert cmp.starvation_s == pytest.approx(0.1)

    def test_traces_without_kernels_rejected(self):
        empty = Trace()
        full = Trace([kernel("k", 0, 1)])
        with pytest.raises(ValueError):
            compare_traces(empty, full)
        with pytest.raises(ValueError):
            compare_traces(full, empty)

    def test_end_to_end_attribution_closes(self):
        """On real proxy runs the wall delta decomposes into direct
        slack + starvation with negligible residue."""
        cfg = ProxyConfig(matrix_size=512, iterations=25)
        base = run_proxy(cfg)
        slow = run_proxy(cfg, SlackModel(1e-3))
        cmp = compare_traces(base.trace, slow.trace)
        assert cmp.wall_delta_s > 0
        assert abs(cmp.unattributed_s) < 0.02 * cmp.wall_delta_s
        assert cmp.gap_growth > 10
