"""Content-addressed store of traced application profiles.

Sibling of :class:`repro.parallel.PointCache`: where the point cache
keys proxy measurements on (ProxyConfig, slack), this keys a whole
traced application run on its profiling configuration — every config
dataclass field (nested hardware specs included, via
``dataclasses.asdict``, so the seed, jitter, box size and GPU/PCIe
specs all participate) plus a code version tag. The figure/table
experiments re-run the same two app configs constantly; with the
columnar trace store a profile serializes to one JSON document of
columns that round-trips **bit-exactly** (floats via ``repr``), so a
warm cache skips the DES run entirely and reproduces byte-identical
figures.

Lookup/write accounting is published through ``repro.obs`` under the
``profilecache.*`` section. Unreadable or malformed entries count as
misses and are re-profiled, exactly like the point cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Optional, Union

from ..obs import get_registry
from ..trace.store import ColumnarTrace
from .base import AppProfile

__all__ = ["PROFILE_CACHE_VERSION", "AppProfileCache", "profile_key"]

#: Bump whenever app-model or simulator changes alter what a profiling
#: run records — stale traces must not survive a behavioral change.
PROFILE_CACHE_VERSION = "2026.08-9"


def profile_key(
    app: str, config: Any, version: str = PROFILE_CACHE_VERSION
) -> str:
    """Stable content hash identifying one profiling run.

    ``config`` must be a (frozen) config dataclass; the key covers the
    app name, the app's registered model version (see
    :func:`repro.apps.registry.app_model_version` — revising one
    workload's kernel mix invalidates only that workload's entries),
    every config field and the cache-wide version tag. JSON with
    sorted keys keeps the digest stable across processes; floats
    round-trip exactly through ``repr`` so distinct configs never
    collide.
    """
    from .registry import app_model_version

    payload = json.dumps(
        {
            "app": app,
            "app_model_version": app_model_version(app),
            "config": dataclasses.asdict(config),
            "version": version,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _profile_doc(profile: AppProfile) -> dict:
    trace = profile.trace
    if not isinstance(trace, ColumnarTrace):
        # Scalar traces (e.g. hand-built in tests) encode through a
        # temporary columnar copy; materialization is bit-exact.
        trace = ColumnarTrace(iter(trace), name=trace.name)
    return {
        "name": profile.name,
        "runtime_s": profile.runtime_s,
        "queue_parallelism": profile.queue_parallelism,
        "cuda_calls_per_second": profile.cuda_calls_per_second,
        "trace": trace.to_doc(),
    }


def _profile_from_doc(doc: dict) -> AppProfile:
    return AppProfile(
        name=str(doc["name"]),
        trace=ColumnarTrace.from_doc(doc["trace"]),
        runtime_s=float(doc["runtime_s"]),
        queue_parallelism=int(doc["queue_parallelism"]),
        cuda_calls_per_second=float(doc["cuda_calls_per_second"]),
    )


class AppProfileCache:
    """Directory-backed store of :class:`AppProfile` by content key."""

    def __init__(
        self,
        root: Union[str, Path],
        version: str = PROFILE_CACHE_VERSION,
    ) -> None:
        self.root = Path(root)
        self.version = version
        #: Lifetime lookup accounting for this cache object. ``corrupt``
        #: counts entries that existed on disk but failed to parse
        #: (counted as misses too — the app gets re-profiled).
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 before any get)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def path_for(self, app: str, config: Any) -> Path:
        """On-disk location of one profile's entry."""
        key = profile_key(app, config, self.version)
        return self.root / key[:2] / f"{key}.json"

    def get(self, app: str, config: Any) -> Optional[AppProfile]:
        """Cached profile for a config, or ``None`` on a miss."""
        path = self.path_for(app, config)
        reg = get_registry()
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            reg.counter("profilecache.misses").inc()
            return None
        try:
            profile = _profile_from_doc(json.loads(text))
        except (ValueError, KeyError, TypeError, IndexError):
            # Torn/stale entry: treat as a miss and re-profile.
            self.corrupt += 1
            self.misses += 1
            reg.counter("profilecache.invalidated").inc()
            reg.counter("profilecache.misses").inc()
            return None
        self.hits += 1
        reg.counter("profilecache.hits").inc()
        return profile

    def put(self, app: str, config: Any, profile: AppProfile) -> Path:
        """Store one profile; returns the entry's path.

        Writes via a temporary file + rename so an interrupted run
        never leaves a torn entry behind.
        """
        path = self.path_for(app, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(_profile_doc(profile)))
        tmp.replace(path)
        self.writes += 1
        get_registry().counter("profilecache.writes").inc()
        return path

    def __len__(self) -> int:
        """Number of entries currently stored."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deleter
                pass
        for sub in self.root.glob("*"):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed
