"""LAMMPS (LJ benchmark, GPU package) workload model.

Analytic strong-scaling runtimes (Table I, Figure 2, the OpenMP
results) plus a traced simulation of the GPU package's per-step data
path (Figures 4-5, Table III).
"""

from .gpu_offload import (
    FORCE_BYTES_PER_ATOM,
    LammpsProfileConfig,
    NEIGHBOR_EVERY,
    PAIR_SECONDS_PER_ATOM,
    POSITION_BYTES_PER_ATOM,
    profile_lammps,
)
from .lj import ATOMS_PER_UNIT_BOX, DEFAULT_BOX, LJParams, PAPER_BOX_SIZES
from .scaling import LammpsScalingModel, PER_ATOM_RUN_S, SETUP_S
from .weak_scaling import (
    BasicUnit,
    WeakScalingProjection,
    find_basic_unit,
    project_weak_scaling,
)

__all__ = [
    "LJParams",
    "DEFAULT_BOX",
    "ATOMS_PER_UNIT_BOX",
    "PAPER_BOX_SIZES",
    "LammpsScalingModel",
    "SETUP_S",
    "PER_ATOM_RUN_S",
    "LammpsProfileConfig",
    "profile_lammps",
    "POSITION_BYTES_PER_ATOM",
    "FORCE_BYTES_PER_ATOM",
    "PAIR_SECONDS_PER_ATOM",
    "NEIGHBOR_EVERY",
    "BasicUnit",
    "WeakScalingProjection",
    "find_basic_unit",
    "project_weak_scaling",
]
