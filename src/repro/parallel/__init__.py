"""Parallel execution engine for proxy sweeps and experiments.

Every point of a sweep grid is an independent, deterministic DES run;
this package turns that independence into wall-clock speed without
giving up reproducibility:

* :class:`SweepExecutor` — fans :class:`PointTask`s out over a process
  pool (``workers=None`` → ``os.cpu_count()``), returns results in
  deterministic grid order, and degrades gracefully to an in-process
  loop where pools are unavailable;
* :class:`PointCache` — a content-addressed per-(config, slack) result
  store under ``.cache/points/`` so no grid point is ever measured
  twice, even across partial grids, grid extensions, and interrupted
  sweeps;
* :func:`measure_point` — the picklable worker function reducing one
  proxy run to scalar measurements;
* :mod:`repro.parallel.shards` — the scale-out layer: partition a
  grid deterministically into shards (:func:`shard_of_task`), run one
  shard per host/process (:func:`run_sweep_shard`, the ``sweep
  --shard I/N`` CLI), and reassemble the artifacts into a result
  byte-identical to the single-host run (:func:`merge_shards`,
  :class:`ShardCoordinator`).
"""

from .executor import (
    ExecutorStats,
    SweepExecutor,
    fork_available,
    merge_stats,
)
from .point import PointMeasurement, PointTask, measure_point
from .pointcache import POINT_CACHE_VERSION, PointCache, point_key
from .shards import (
    GridSpec,
    SHARD_SCHEMA_VERSION,
    ShardCoordinator,
    ShardMergeError,
    ShardMergeStats,
    SweepShard,
    faults_digest,
    load_shard,
    merge_shards,
    options_digest,
    run_sweep_shard,
    shard_of_task,
    write_shard,
)

__all__ = [
    "SweepExecutor",
    "ExecutorStats",
    "fork_available",
    "merge_stats",
    "PointTask",
    "PointMeasurement",
    "measure_point",
    "PointCache",
    "point_key",
    "POINT_CACHE_VERSION",
    "GridSpec",
    "SHARD_SCHEMA_VERSION",
    "ShardCoordinator",
    "ShardMergeError",
    "ShardMergeStats",
    "SweepShard",
    "faults_digest",
    "load_shard",
    "merge_shards",
    "options_digest",
    "run_sweep_shard",
    "shard_of_task",
    "write_shard",
]
