"""The LAMMPS Lennard-Jones workload (paper Section III-D-1).

The LJ benchmark models short-range forces between identical atoms in
a liquid. Problem size is set by the cubic "box size": the developers'
default box of 20 contains 32,000 atoms, and atom count scales with
the cube of the box edge (box 80 = 4^3 x 32k = 2,048k atoms, box 120 =
6^3 x 32k = 6,912k — matching the paper's Table I rows).

Note: the paper's Table I lists box 60 as 288k atoms while calling it
"a 3x3x3 grid of 32,000 atom cubes"; 3^3 x 32k is 864k, and the cubic
rule fits every other row *and* makes Table I's runtimes linear in
atom count, so we treat 288k as a typo and use the cubic rule
throughout (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LJParams", "DEFAULT_BOX", "ATOMS_PER_UNIT_BOX", "PAPER_BOX_SIZES", "GPU_BYTES_PER_ATOM"]

#: The developers' default LJ box edge.
DEFAULT_BOX = 20
#: Atoms in the default box.
ATOMS_PER_UNIT_BOX = 32_000
#: Box sizes the paper's Table I / Figure 2 sweep.
PAPER_BOX_SIZES = (20, 60, 80, 100, 120)

#: GPU-package device memory per atom (positions + forces + types +
#: neighbour lists), tuned so the paper's box 200 saturates a 40 GiB
#: A100.
GPU_BYTES_PER_ATOM = 1250


@dataclass(frozen=True)
class LJParams:
    """One LJ configuration: box edge and simulation length."""

    box_size: int = DEFAULT_BOX
    steps: int = 5000

    def __post_init__(self) -> None:
        if self.box_size <= 0:
            raise ValueError("box_size must be positive")
        if self.box_size % DEFAULT_BOX != 0:
            raise ValueError(
                f"box_size must be a multiple of {DEFAULT_BOX} "
                f"(cubic replication of the 32k-atom unit box)"
            )
        if self.steps <= 0:
            raise ValueError("steps must be positive")

    @property
    def atoms(self) -> int:
        """Total atom count: 32k per unit box, cubic in the edge ratio."""
        return ATOMS_PER_UNIT_BOX * (self.box_size // DEFAULT_BOX) ** 3

    def atoms_per_process(self, processes: int) -> float:
        """Domain-decomposed atoms per MPI rank."""
        if processes <= 0:
            raise ValueError("processes must be positive")
        return self.atoms / processes

    def gpu_memory_bytes(self, bytes_per_atom: int = GPU_BYTES_PER_ATOM) -> int:
        """Device-memory footprint of the GPU package for this box.

        Positions, forces, types, and the dominant neighbour lists add
        up to ~1.25 kB per atom, which is what makes box 200 (32 M
        atoms, ~37 GiB) "saturate the GPU's memory" on a 40 GiB A100 —
        the paper's upper-bound production configuration.
        """
        if bytes_per_atom <= 0:
            raise ValueError("bytes_per_atom must be positive")
        return self.atoms * bytes_per_atom

    def fits_gpu(self, memory_bytes: int = 40 * 1024**3) -> bool:
        """Whether this box's GPU working set fits ``memory_bytes``."""
        return self.gpu_memory_bytes() <= memory_bytes
