"""Common interface for production-application models.

An application model can do two things:

* **answer analytically** — closed-form runtime as a function of the
  resource allocation (MPI processes, OpenMP threads), reproducing the
  CPU-to-GPU-ratio experiments of Section IV-A;
* **run on the simulator** — emit its kernel and memcpy stream through
  the simulated CUDA runtime, producing the NSys-like traces that
  Figures 4-5, Table III and the prediction model consume.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..trace import Trace

__all__ = ["AppProfile", "ApplicationModel"]


@dataclass(frozen=True)
class AppProfile:
    """The result of profiling one application run.

    Attributes
    ----------
    name:
        Application name ("lammps", "cosmoflow").
    trace:
        Kernel/memcpy/API events recorded during the run.
    runtime_s:
        Wall-clock (simulated) runtime of the profiled region.
    queue_parallelism:
        Effective number of kernels concurrently queued at the GPU —
        the paper reads 8 for LAMMPS (one launcher per MPI process)
        and adopts a pessimistic 4 for CosmoFlow (whose kernel
        sequences are launched in ~1/7th of their execution time).
    cuda_calls_per_second:
        Rate of host-visible CUDA API calls, which multiplied by the
        per-call slack gives the *direct* (admissible) delay.
    """

    name: str
    trace: Trace
    runtime_s: float
    queue_parallelism: int
    cuda_calls_per_second: float

    def __post_init__(self) -> None:
        if self.runtime_s <= 0:
            raise ValueError("runtime_s must be positive")
        if self.queue_parallelism < 1:
            raise ValueError("queue_parallelism must be >= 1")


class ApplicationModel(abc.ABC):
    """Base class for the production-application workload models."""

    #: Human-readable application name.
    name: str = "app"

    @abc.abstractmethod
    def runtime(self, processes: int = 1, threads: int = 1) -> float:
        """Analytic runtime for a CPU allocation (strong scaling)."""

    @abc.abstractmethod
    def profile(self, **kwargs) -> AppProfile:
        """Run on the simulated GPU and return the traced profile."""
