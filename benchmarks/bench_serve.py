"""Benchmark: penalty serving — parity first, then throughput.

Three legs, mirroring the serving layer's contract
(:mod:`repro.serve`, docs/serving.md):

* **parity** — the surrogate must agree with
  :class:`~repro.proxy.SlackResponseSurface` *exactly* (and report
  bound 0) at every measured grid point before any speedup or
  throughput number is recorded. No parity, no benchmark.
* **warm path** — single-process prediction throughput, measured
  three ways: the raw vectorized
  :meth:`~repro.serve.SurrogateModel.evaluate`, the micro-batching
  :class:`~repro.serve.PenaltyService` with array-batch clients
  (:meth:`~repro.serve.PenaltyService.predict_batch`), and the
  per-request future path. The service floors are ``WARM_FLOOR``
  (100k predictions/s) on the first two; the per-request path is
  recorded without a floor (it measures asyncio future overhead, not
  the evaluation engine).
* **cold path** — one out-of-domain query falls back to a real DES
  measurement, refines the surrogate online, and the same query is
  then answered warm.

Results land in ``BENCH_serve.json`` at the repo root, next to
``BENCH_sweep.json`` and friends.
"""

import asyncio
import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.proxy import SlackResponseSurface, SweepOptions, run_slack_sweep
from repro.serve import (
    ColdPathConfig,
    PenaltyService,
    SurrogateModel,
    assert_parity,
)

#: Where the perf artifact lands (repo root, next to BENCH_sweep.json).
SERVE_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: Minimum warm-path predictions/s — the serving layer's whole point.
WARM_FLOOR = 100_000

#: Fitting grid: three sizes x three thread counts x nine slacks.
SIZES = (2**9, 2**11, 2**13)
THREADS = (1, 2, 4)
SLACKS = tuple(np.logspace(-6, -3, 9))

#: Warm-path query count (in-domain, mixed series).
N_QUERIES = 200_000

#: Sections accumulated by the tests and flushed at module teardown.
_SECTIONS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_artifact():
    yield
    if not _SECTIONS:
        return
    doc = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "warm_floor_per_s": WARM_FLOOR,
    }
    doc.update(_SECTIONS)
    SERVE_ARTIFACT.write_text(json.dumps(doc, indent=1, sort_keys=True))


@pytest.fixture(scope="module")
def fitted():
    """One sweep, its surface, and the surrogate fitted over it."""
    sweep = run_slack_sweep(
        matrix_sizes=SIZES,
        slack_values_s=list(SLACKS),
        threads=THREADS,
        iterations=25,
    )
    surface = SlackResponseSurface(sweep)
    model = SurrogateModel.fit(sweep)
    return sweep, surface, model


@pytest.fixture(scope="module")
def queries():
    """Deterministic in-domain query batch across all series."""
    rng = np.random.default_rng(42)
    sizes = rng.choice(SIZES, N_QUERIES)
    threads = rng.choice(THREADS, N_QUERIES)
    slacks = 10 ** rng.uniform(-6, -3, N_QUERIES)
    return sizes, threads, slacks


def test_bench_serve_parity(fitted):
    """Surrogate == surface at every measured point. Runs first."""
    _, surface, model = fitted
    checked = assert_parity(model, surface)
    assert checked >= len(SIZES) * len(THREADS) * len(SLACKS)
    # Interpolated (off-grid) queries match the surface's own rule too.
    rng = np.random.default_rng(7)
    for _ in range(200):
        size = int(rng.choice(SIZES))
        thr = int(rng.choice(THREADS))
        slack = float(10 ** rng.uniform(-6.5, -3.0))
        expected = surface.penalty(size, slack, thr)
        got = model.predict(size, slack, thr)
        assert got.penalty == pytest.approx(expected, abs=1e-12)
        assert got.bound >= 0.0
    _SECTIONS["parity"] = {"measured_points_checked": checked}


def test_bench_serve_warm_throughput(fitted, queries):
    """Raw and service warm-path throughput against the 100k/s floor."""
    assert "parity" in _SECTIONS, "parity must pass before throughput"
    _, _, model = fitted
    sizes, threads, slacks = queries

    # Leg 1: the raw vectorized evaluation engine.
    t0 = time.perf_counter()
    pen, bound, reason = model.evaluate(sizes, threads, slacks)
    raw_s = time.perf_counter() - t0
    assert (reason == 0).all() and np.isfinite(pen).all()
    raw_rate = N_QUERIES / raw_s

    # Leg 2: through the service, array-batch clients (8 concurrent).
    async def _batched():
        async with PenaltyService(surrogate=model) as svc:
            chunk = 5000

            async def client(lo, hi):
                for c in range(lo, hi, chunk):
                    p, _ = await svc.predict_batch(
                        sizes[c:c + chunk],
                        slacks[c:c + chunk],
                        threads[c:c + chunk],
                    )
                    assert len(p) == min(chunk, hi - c)

            per = N_QUERIES // 8
            t0 = time.perf_counter()
            await asyncio.gather(
                *(client(i * per, (i + 1) * per) for i in range(8))
            )
            return time.perf_counter() - t0, svc.stats()

    service_s, svc_stats = asyncio.run(_batched())
    service_rate = N_QUERIES / service_s

    # Leg 3: per-request futures (asyncio overhead, recorded, no floor).
    n_single = 20_000

    async def _singles():
        async with PenaltyService(
            surrogate=model, max_queue=n_single
        ) as svc:
            t0 = time.perf_counter()
            for c in range(0, n_single, 2000):
                await asyncio.gather(
                    *(
                        svc.predict(
                            int(sizes[i]), float(slacks[i]), int(threads[i])
                        )
                        for i in range(c, c + 2000)
                    )
                )
            return time.perf_counter() - t0

    single_rate = n_single / asyncio.run(_singles())

    _SECTIONS["warm"] = {
        "queries": N_QUERIES,
        "raw_eval_per_s": raw_rate,
        "service_batched_per_s": service_rate,
        "service_batches": svc_stats["batches"],
        "per_request_per_s": single_rate,
    }
    assert raw_rate >= WARM_FLOOR, (
        f"raw evaluate {raw_rate:,.0f}/s below the {WARM_FLOOR:,}/s floor"
    )
    assert service_rate >= WARM_FLOOR, (
        f"batched service {service_rate:,.0f}/s below the "
        f"{WARM_FLOOR:,}/s floor"
    )


def test_bench_serve_cold_path(fitted):
    """A refused query measures for real, then serves warm."""
    _, _, model = fitted
    cold_size = 2**10  # not on the fitting grid -> unknown-series
    cold = ColdPathConfig(
        iterations=5,
        target_compute_s=2.0,
        options=SweepOptions(workers=1, cache=False),
    )

    async def _run():
        async with PenaltyService(surrogate=model, cold_path=cold) as svc:
            t0 = time.perf_counter()
            first = await svc.predict(cold_size, 1e-4, 1)
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            again = await svc.predict(cold_size, 1e-4, 1)
            warm_s = time.perf_counter() - t0
            return first, cold_s, again, warm_s, svc.stats()

    first, cold_s, again, warm_s, stats = asyncio.run(_run())
    assert first.penalty == again.penalty  # refined region serves warm
    assert stats["cold_misses"] == 1
    assert stats["observed_points"] >= 1
    assert warm_s < cold_s  # warm answer skips the DES entirely
    _SECTIONS["cold"] = {
        "cold_query_s": cold_s,
        "warm_requery_s": warm_s,
        "measured_points": stats["cold_measured_points"],
    }
