"""CPU-only workloads — the paper's third application category.

"The case of CPU only applications is important for CDI as trapping of
GPU resources would traditionally occur with these jobs. However, no
slack exists in CPU jobs as there is no accelerator." (Sec III-D)

:class:`CpuOnlyApp` is a parameterized CPU workload (a stencil-style
iterative solver) with a standard strong-scaling model. Its role in
the reproduction is the *scheduling* analysis: on heterogeneous nodes
every CPU-only job traps that node's GPUs; under CDI it simply never
composes any. :func:`trapped_gpu_analysis` quantifies the fleet-level
effect for a mixed job stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Sequence, Tuple

import numpy as np

from ..cdi import (
    CDIScheduler,
    CPUNode,
    GPUChassis,
    JobRequest,
    ResourcePool,
    ScheduleOutcome,
    TraditionalScheduler,
)
from ..des import Environment, Event, quantize
from ..des.fastforward import FastForwardInfo
from .base import AppProfile, publish_fastforward

__all__ = [
    "CpuOnlyApp",
    "CpuOnlyProfileConfig",
    "profile_cpuonly",
    "trapped_gpu_analysis",
]


@dataclass(frozen=True)
class CpuOnlyApp:
    """An iterative CPU solver: serial fraction + parallel work + halo.

    A classic Amdahl/halo strong-scaling model — enough structure to
    pick sensible core counts for the scheduling studies.
    """

    name: str = "stencil"
    serial_s: float = 10.0
    parallel_s: float = 1000.0
    halo_per_rank_s: float = 0.4

    def __post_init__(self) -> None:
        if self.serial_s < 0 or self.parallel_s < 0 or self.halo_per_rank_s < 0:
            raise ValueError("cost terms must be non-negative")

    def runtime(self, cores: int) -> float:
        """Strong-scaling runtime on ``cores`` cores."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        halo = self.halo_per_rank_s * (cores - 1) if cores > 1 else 0.0
        return self.serial_s + self.parallel_s / cores + halo

    def best_core_count(self, candidates: Sequence[int] = (1, 2, 4, 8, 16,
                                                           24, 48)) -> int:
        """The core count minimizing runtime among ``candidates``."""
        return min(candidates, key=self.runtime)

    def request(self, cores: int | None = None) -> JobRequest:
        """A scheduler request for this job (zero GPUs, by nature)."""
        return JobRequest(
            name=self.name,
            cores=cores if cores is not None else self.best_core_count(),
            gpus=0,
        )


@dataclass(frozen=True)
class CpuOnlyProfileConfig:
    """Configuration of one traced CPU-only run.

    The profile exists so the registry/conformance contract covers the
    paper's third application category uniformly: the run executes on
    the simulator clock (iteration timeouts on the dyadic grid), but —
    as Section III-D observes — issues **no** CUDA calls, so its trace
    is empty and its slack sensitivity identically zero.
    """

    app: CpuOnlyApp = field(default_factory=CpuOnlyApp)
    cores: int = 48
    iterations: int = 50
    jitter: float = 0.0
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")


def profile_cpuonly(
    config: Optional[CpuOnlyProfileConfig] = None,
    slack: Optional[Any] = None,
    *,
    fast_forward: Optional[bool] = None,
    faults: Optional[Any] = None,
) -> AppProfile:
    """Run the traced CPU-only solver and return its (traceless) profile.

    Signature-compatible with the GPU apps' profilers so the registry
    can treat every workload uniformly. ``slack`` and ``faults`` are
    accepted and inert — there is no accelerator for either to act on
    — and steady-state fast-forward always refuses with
    ``reason="cpu-only"`` (nothing device-side to certify), recorded
    on the profile like any other gate.
    """
    from ..trace.store import ColumnarTrace

    config = config or CpuOnlyProfileConfig()
    env = Environment()
    rng = np.random.default_rng(config.seed)
    step_s = config.app.runtime(config.cores) / config.iterations

    def jittered(mean: float) -> float:
        if config.jitter == 0:
            return mean
        sigma = np.sqrt(np.log(1 + config.jitter**2))
        return float(rng.lognormal(np.log(mean) - sigma**2 / 2, sigma))

    def solver() -> Generator[Event, Any, float]:
        t0 = env.now
        for _ in range(config.iterations):
            yield env.timeout(quantize(jittered(step_s)))
        return env.now - t0

    main_proc = env.process(solver(), name="cpuonly-main")
    env.run()

    enabled = True if fast_forward is None else bool(fast_forward)
    info = FastForwardInfo(
        enabled=enabled,
        certified=False,
        reason="disabled" if not enabled else "cpu-only",
    )
    publish_fastforward(info)
    return AppProfile(
        name="cpuonly",
        trace=ColumnarTrace(name="cpuonly"),
        runtime_s=float(main_proc.value),
        queue_parallelism=1,
        cuda_calls_per_second=0.0,
        fastforward=info,
    )


def trapped_gpu_analysis(
    cpu_jobs: int,
    cores_per_job: int = 48,
    node_count: int = 32,
    cores_per_node: int = 48,
    gpus_per_node: int = 4,
) -> Tuple[ScheduleOutcome, ScheduleOutcome]:
    """Schedule a stream of CPU-only jobs both ways.

    Returns ``(traditional, cdi)`` outcomes. Under traditional
    scheduling every CPU-only job occupies heterogeneous nodes and
    traps their GPUs (burning idle power, blocking GPU jobs); under
    CDI the same jobs take cores only.
    """
    if cpu_jobs <= 0:
        raise ValueError("cpu_jobs must be positive")
    jobs = [
        CpuOnlyApp(name=f"cpu-job-{i}").request(cores=cores_per_job)
        for i in range(cpu_jobs)
    ]
    traditional = TraditionalScheduler(
        node_count=node_count,
        cores_per_node=cores_per_node,
        gpus_per_node=gpus_per_node,
    ).schedule(jobs)
    pool = ResourcePool(
        nodes=[
            CPUNode(node_id=f"n{i}", sockets=cores_per_node // 24)
            for i in range(node_count)
        ],
        chassis=[
            GPUChassis(chassis_id=f"c{i}", gpu_count=gpus_per_node * 4)
            for i in range(node_count // 4)
        ],
    )
    cdi = CDIScheduler(pool).schedule(jobs)
    return traditional, cdi
