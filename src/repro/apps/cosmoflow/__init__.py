"""CosmoFlow (MLPerf HPC, mini dataset) workload model.

A 3D-CNN training loop over the simulated GPU: layer-derived kernel
sequences, prefetch input pipeline, Horovod-style gradient exchange —
the GPU-dominant counterpart to LAMMPS in the paper's study.
"""

from .layers import (
    CONV_CHANNELS,
    Conv3DBlock,
    DENSE_UNITS,
    DenseLayer,
    INPUT_SHAPE,
    cosmoflow_layers,
)
from .model import CosmoFlowNet
from .training import (
    COSMOFLOW_REQUIRED_CORES,
    CosmoFlowProfileConfig,
    LAUNCH_PHASE_FRACTION,
    cosmoflow_cpu_runtime,
    profile_cosmoflow,
)

__all__ = [
    "CosmoFlowNet",
    "Conv3DBlock",
    "DenseLayer",
    "cosmoflow_layers",
    "INPUT_SHAPE",
    "CONV_CHANNELS",
    "DENSE_UNITS",
    "CosmoFlowProfileConfig",
    "profile_cosmoflow",
    "cosmoflow_cpu_runtime",
    "COSMOFLOW_REQUIRED_CORES",
    "LAUNCH_PHASE_FRACTION",
]
