"""CDI fabric topologies: rack-, row- and cluster-scale.

Builds a networkx graph of hosts, fabric switches and GPU chassis with
physically-motivated cable lengths, and derives the *slack* a given
host-chassis pairing experiences from the path: NIC costs at both
endpoints, per-switch hop latency, and fibre time-of-flight over the
accumulated cable length. This is how experiment configurations turn
"this GPU lives two racks away" into a per-CUDA-call delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .slack import SlackModel, latency_for_fibre_distance

__all__ = ["Scale", "FabricSpec", "Fabric", "PathInfo"]


class Scale(str, Enum):
    """Deployment scale of a CDI fabric (how far a chassis can serve)."""

    RACK = "rack"
    ROW = "row"
    CLUSTER = "cluster"


@dataclass(frozen=True)
class FabricSpec:
    """Geometry and component costs of a CDI fabric.

    Distances follow typical machine-room dimensions: ~2 m of cable
    within a rack, ~1.5 m between adjacent racks in a row, ~30 m
    between rows.
    """

    scale: Scale = Scale.ROW
    racks_per_row: int = 8
    rows: int = 1
    hosts_per_rack: int = 4
    chassis_racks: Tuple[int, ...] = (0,)
    intra_rack_cable_m: float = 2.0
    inter_rack_cable_m: float = 1.5
    inter_row_cable_m: float = 30.0
    nic_latency_s: float = 0.5e-6
    switch_hop_latency_s: float = 0.3e-6

    def __post_init__(self) -> None:
        if self.racks_per_row <= 0 or self.rows <= 0 or self.hosts_per_rack <= 0:
            raise ValueError("fabric dimensions must be positive")
        for r in self.chassis_racks:
            if not 0 <= r < self.racks_per_row * self.rows:
                raise ValueError(f"chassis rack {r} outside fabric")
        if self.scale is Scale.RACK and len(self.chassis_racks) < 1:
            raise ValueError("rack-scale fabric needs a chassis per served rack")


@dataclass(frozen=True)
class PathInfo:
    """Resolved host-to-chassis path characteristics."""

    host: str
    chassis: str
    switch_hops: int
    cable_m: float
    slack_s: float

    def slack_model(self) -> SlackModel:
        """A deterministic slack model for this path."""
        return SlackModel(self.slack_s)


class Fabric:
    """A populated CDI fabric graph.

    Node names: ``host:<rack>:<i>``, ``tor:<rack>`` (top-of-rack
    switch), ``row:<row>`` (row/spine switch), ``chassis:<rack>``.
    Edges carry ``cable_m``. Rack-scale paths go host->tor->chassis;
    row-scale adds the row switch; cluster-scale adds a core switch.
    """

    def __init__(self, spec: FabricSpec) -> None:
        self.spec = spec
        self.graph = nx.Graph()
        self._build()

    # -- construction ----------------------------------------------------------
    def _build(self) -> None:
        s = self.spec
        g = self.graph
        total_racks = s.racks_per_row * s.rows
        g.add_node("core", kind="switch")
        for row in range(s.rows):
            row_sw = f"row:{row}"
            g.add_node(row_sw, kind="switch")
            g.add_edge(row_sw, "core", cable_m=s.inter_row_cable_m)
        for rack in range(total_racks):
            row = rack // s.racks_per_row
            pos_in_row = rack % s.racks_per_row
            tor = f"tor:{rack}"
            g.add_node(tor, kind="switch")
            g.add_edge(
                tor,
                f"row:{row}",
                cable_m=s.inter_rack_cable_m * (pos_in_row + 1),
            )
            for i in range(s.hosts_per_rack):
                host = f"host:{rack}:{i}"
                g.add_node(host, kind="host")
                g.add_edge(host, tor, cable_m=s.intra_rack_cable_m)
        for rack in s.chassis_racks:
            chassis = f"chassis:{rack}"
            g.add_node(chassis, kind="chassis")
            g.add_edge(chassis, f"tor:{rack}", cable_m=s.intra_rack_cable_m)

    # -- queries ---------------------------------------------------------------
    def hosts(self) -> List[str]:
        """All host node names."""
        return sorted(
            n for n, d in self.graph.nodes(data=True) if d["kind"] == "host"
        )

    def chassis(self) -> List[str]:
        """All GPU chassis node names."""
        return sorted(
            n for n, d in self.graph.nodes(data=True) if d["kind"] == "chassis"
        )

    def path(self, host: str, chassis: str) -> PathInfo:
        """Resolve the shortest path and its slack.

        Slack = 2 NIC traversals + hops * switch latency + fibre
        time-of-flight over the path's total cable length (one-way),
        matching the paper's Figure 1 decomposition.
        """
        if host not in self.graph:
            raise KeyError(f"unknown host {host!r}")
        if chassis not in self.graph:
            raise KeyError(f"unknown chassis {chassis!r}")
        nodes = nx.shortest_path(self.graph, host, chassis)
        switch_hops = sum(
            1 for n in nodes[1:-1] if self.graph.nodes[n]["kind"] == "switch"
        )
        cable_m = sum(
            self.graph.edges[a, b]["cable_m"] for a, b in zip(nodes, nodes[1:])
        )
        slack = (
            2 * self.spec.nic_latency_s
            + switch_hops * self.spec.switch_hop_latency_s
            + latency_for_fibre_distance(cable_m)
        )
        return PathInfo(
            host=host,
            chassis=chassis,
            switch_hops=switch_hops,
            cable_m=cable_m,
            slack_s=slack,
        )

    def nearest_chassis(self, host: str) -> PathInfo:
        """The minimum-slack chassis reachable from ``host``."""
        paths = [self.path(host, c) for c in self.chassis()]
        if not paths:
            raise ValueError("fabric has no chassis")
        return min(paths, key=lambda p: p.slack_s)

    def worst_case_slack(self) -> float:
        """Maximum slack over every host-chassis pair."""
        return max(
            self.path(h, c).slack_s for h in self.hosts() for c in self.chassis()
        )

    # -- degraded operation ---------------------------------------------------------
    def path_with_failures(
        self, host: str, chassis: str, failed: Sequence[str]
    ) -> Optional[PathInfo]:
        """The path (and slack) when fabric components are down.

        ``failed`` lists switch/chassis node names removed from the
        topology (e.g. ``["row:0"]``). Returns ``None`` if no path
        survives — the composition must be re-placed on another
        chassis. Slack over surviving detours quantifies degraded-mode
        operation, a deployment question the paper's future work
        raises.
        """
        for f in failed:
            if f not in self.graph:
                raise KeyError(f"unknown fabric component {f!r}")
            if f == host or f == chassis:
                return None
        degraded = self.graph.copy()
        degraded.remove_nodes_from(failed)
        if host not in degraded or chassis not in degraded:
            return None
        try:
            nodes = nx.shortest_path(degraded, host, chassis)
        except nx.NetworkXNoPath:
            return None
        switch_hops = sum(
            1 for n in nodes[1:-1] if degraded.nodes[n]["kind"] == "switch"
        )
        cable_m = sum(
            degraded.edges[a, b]["cable_m"] for a, b in zip(nodes, nodes[1:])
        )
        slack = (
            2 * self.spec.nic_latency_s
            + switch_hops * self.spec.switch_hop_latency_s
            + latency_for_fibre_distance(cable_m)
        )
        return PathInfo(host=host, chassis=chassis, switch_hops=switch_hops,
                        cable_m=cable_m, slack_s=slack)

    def survivable(
        self, host: str, failed: Sequence[str]
    ) -> List[PathInfo]:
        """All chassis still reachable from ``host`` under failures."""
        paths = []
        for c in self.chassis():
            p = self.path_with_failures(host, c, failed)
            if p is not None:
                paths.append(p)
        return paths
