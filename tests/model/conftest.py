"""Shared fixtures for model tests: a synthetic response surface."""

import pytest

from repro.proxy import SlackResponseSurface, SweepPoint, SweepResult


def synthetic_point(matrix_size, threads, slack_s, penalty):
    """Fabricate a sweep point with a prescribed penalty."""
    return SweepPoint(
        matrix_size=matrix_size,
        threads=threads,
        slack_s=slack_s,
        loop_runtime_s=1.0 + penalty + 5 * slack_s,
        corrected_runtime_s=1.0 + penalty,
        baseline_runtime_s=1.0,
        iterations=10,
        kernel_time_s={512: 50e-6, 2048: 1.5e-3, 8192: 60e-3,
                       32768: 3.8}[matrix_size],
    )


#: Penalties mimicking the measured surface shape: smaller matrices
#: and larger slack hurt more; more threads hurt less.
SYNTHETIC_PENALTIES = {
    # (matrix_size, threads, slack): penalty
    (512, 1, 1e-6): 0.005, (512, 1, 1e-4): 0.45, (512, 1, 1e-2): 45.0,
    (2048, 1, 1e-6): 0.0003, (2048, 1, 1e-4): 0.025, (2048, 1, 1e-2): 2.5,
    (8192, 1, 1e-6): 0.0, (8192, 1, 1e-4): 0.001, (8192, 1, 1e-2): 0.09,
    (32768, 1, 1e-6): 0.0, (32768, 1, 1e-4): 0.0, (32768, 1, 1e-2): 0.002,
    (512, 4, 1e-6): 0.0, (512, 4, 1e-4): 0.0, (512, 4, 1e-2): 12.0,
    (2048, 4, 1e-6): 0.0, (2048, 4, 1e-4): 0.0, (2048, 4, 1e-2): 0.3,
    (8192, 4, 1e-6): 0.0, (8192, 4, 1e-4): 0.0, (8192, 4, 1e-2): 0.01,
    (32768, 4, 1e-6): 0.0, (32768, 4, 1e-4): 0.0, (32768, 4, 1e-2): 0.0,
    (512, 8, 1e-6): 0.0, (512, 8, 1e-4): 0.0, (512, 8, 1e-2): 7.0,
    (2048, 8, 1e-6): 0.0, (2048, 8, 1e-4): 0.0, (2048, 8, 1e-2): 0.15,
    (8192, 8, 1e-6): 0.0, (8192, 8, 1e-4): 0.0, (8192, 8, 1e-2): 0.005,
    (32768, 8, 1e-6): 0.0, (32768, 8, 1e-4): 0.0, (32768, 8, 1e-2): 0.0,
}

#: Table II-like proxy kernel times for the synthetic surface.
SYNTHETIC_KERNEL_TIMES = {512: 50e-6, 2048: 1.5e-3, 8192: 60e-3, 32768: 3.8}


@pytest.fixture(scope="session")
def synthetic_surface():
    sweep = SweepResult()
    for (n, t, s), penalty in SYNTHETIC_PENALTIES.items():
        sweep.add(synthetic_point(n, t, s, penalty))
    return SlackResponseSurface(sweep)
