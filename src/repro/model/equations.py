"""The paper's three equations.

* **Equation 1** removes the direct (admissible) network delay from a
  measured runtime so only the GPU-starvation residual remains:
  ``Time_NoSlack = Time - num_CUDA_calls * Slack_call``.
* **Equation 3** collapses a binned distribution (kernel durations or
  transfer sizes, expressed as proxy matrix-size equivalents) to a
  single slack penalty: the element-count-weighted mean of the
  per-size penalties.
* **Equation 2** combines the kernel and memory penalties, each
  weighted by the fraction of application runtime spent in that kind
  of operation: ``SP_total = %Runtime_K * SP_K + %Runtime_M * SP_M``.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "equation1_remove_direct_slack",
    "equation2_total_slack_penalty",
    "equation3_binned_slack_penalty",
]


def equation1_remove_direct_slack(
    time_s: float, num_cuda_calls: int, slack_per_call_s: float
) -> float:
    """Equation 1: subtract the direct per-call delay from a runtime.

    The remainder, compared against a zero-slack baseline, isolates
    the *secondary* cost of slack: the GPU being starved of work.
    """
    if time_s < 0:
        raise ValueError("time_s must be non-negative")
    if num_cuda_calls < 0:
        raise ValueError("num_cuda_calls must be non-negative")
    if slack_per_call_s < 0:
        raise ValueError("slack_per_call_s must be non-negative")
    return time_s - num_cuda_calls * slack_per_call_s


def equation2_total_slack_penalty(
    runtime_fraction_kernel: float,
    sp_kernel: float,
    runtime_fraction_memory: float,
    sp_memory: float,
) -> float:
    """Equation 2: runtime-weighted total slack penalty.

    Fractions are of total application runtime (they need not sum to
    1; the remainder is host-side time slack does not amplify).
    """
    for name, frac in (
        ("runtime_fraction_kernel", runtime_fraction_kernel),
        ("runtime_fraction_memory", runtime_fraction_memory),
    ):
        if not 0.0 <= frac <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {frac}")
    if runtime_fraction_kernel + runtime_fraction_memory > 1.0 + 1e-9:
        raise ValueError("runtime fractions sum beyond 1")
    if sp_kernel < 0 or sp_memory < 0:
        raise ValueError("slack penalties must be non-negative")
    return (
        runtime_fraction_kernel * sp_kernel
        + runtime_fraction_memory * sp_memory
    )


def equation3_binned_slack_penalty(
    element_counts: Mapping[int, float],
    penalty_per_size: Mapping[int, float],
) -> float:
    """Equation 3: count-weighted mean penalty over matrix-size bins.

    ``element_counts`` maps proxy matrix sizes to how many of the
    application's kernels/transfers were binned there;
    ``penalty_per_size`` maps the same sizes to the proxy's measured
    slack penalty.
    """
    total = float(sum(element_counts.values()))
    if total <= 0:
        raise ValueError("element_counts is empty")
    acc = 0.0
    for size, count in element_counts.items():
        if count < 0:
            raise ValueError(f"negative count for size {size}")
        if count == 0:
            continue
        if size not in penalty_per_size:
            raise KeyError(f"no penalty available for matrix size {size}")
        acc += penalty_per_size[size] * count
    return acc / total
