"""Columnar/scalar parity: the store must be invisible to analysis.

Hypothesis-style seeded property tests: random event streams (ties,
zero-duration events, mixed kinds, shared names, metas) are recorded
into both a legacy scalar :class:`Trace` and a :class:`ColumnarTrace`,
and every public behavior — materialized event sequences, filtered
views, vectorized summaries, timeline analysis, JSON round-trips —
must match **bit for bit**.
"""

import json

import numpy as np
import pytest

from repro.trace import (
    ColumnarTrace,
    CopyKind,
    EventKind,
    Trace,
    TraceEvent,
    device_gaps,
    device_gaps_reference,
    utilization_series,
    utilization_series_reference,
)
from repro.trace.store import ColumnStore

SEEDS = [0, 1, 7, 42, 1234, 987654]

NAMES = ["matmul", "memcpyH2D", "memcpyD2H", "sync", "fft", "reduce"]


def random_events(seed, n=None):
    """A reproducible stream of messy-but-valid trace events."""
    rng = np.random.RandomState(seed)
    n = int(rng.randint(1, 400)) if n is None else n
    events = []
    for _ in range(n):
        kind = EventKind(
            rng.choice([k.value for k in EventKind], p=[0.4, 0.2, 0.2, 0.1, 0.1])
        )
        # Coarse grid of starts => plenty of exact ties for the
        # stable-sort parity; occasional zero-duration events.
        start = float(rng.randint(0, 50)) * 1e-4
        duration = float(rng.choice([0.0, 1e-5, 3e-4, 2e-3]))
        copy_kind = None
        nbytes = 0
        name = str(rng.choice(NAMES))
        meta = {}
        if kind is EventKind.MEMCPY:
            copy_kind = list(CopyKind)[int(rng.randint(0, 3))]
            nbytes = int(rng.randint(1, 1 << 20))
        elif kind is EventKind.KERNEL:
            meta = {"starvation_cost": float(rng.rand()), "n": int(rng.randint(1, 9))}
        events.append(
            TraceEvent(
                kind=kind,
                name=name,
                start=start,
                end=start + duration,
                stream=None if rng.rand() < 0.3 else int(rng.randint(0, 4)),
                nbytes=nbytes,
                copy_kind=copy_kind,
                correlation_id=int(rng.randint(0, 1000)),
                thread=int(rng.randint(0, 8)),
                meta=meta,
            )
        )
    return events


def build_both(events):
    scalar = Trace(name="t")
    columnar = ColumnarTrace(name="t")
    for e in events:
        scalar.append(e)
        columnar.append(e)
    return scalar, columnar


class TestMaterializationParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sorted_sequence_bit_identical(self, seed):
        events = random_events(seed)
        scalar, columnar = build_both(events)
        assert list(columnar) == list(scalar)
        assert len(columnar) == len(scalar)
        assert columnar[0] == scalar[0]
        assert columnar[len(events) - 1] == scalar[len(events) - 1]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_record_order_preserved(self, seed):
        events = random_events(seed)
        _, columnar = build_both(events)
        assert columnar.events_in_record_order() == events

    def test_iteration_is_cached_until_append(self):
        events = random_events(3, n=20)
        _, columnar = build_both(events)
        first = list(columnar)
        assert list(columnar) == first
        columnar.append(events[0])
        assert len(list(columnar)) == 21


class TestSummaryParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_scalar_summaries_exact(self, seed):
        events = random_events(seed)
        scalar, columnar = build_both(events)
        assert columnar.start == scalar.start
        assert columnar.end == scalar.end
        assert columnar.span == scalar.span
        assert columnar.total_time() == scalar.total_time()
        assert columnar.busy_time() == scalar.busy_time()
        assert columnar.max_concurrency() == scalar.max_concurrency()
        assert columnar.threads() == scalar.threads()
        assert columnar.runtime_fraction() == scalar.runtime_fraction()
        assert (columnar.durations() == scalar.durations()).all()
        assert (columnar.sizes() == scalar.sizes()).all()
        assert (columnar.starts() == scalar.starts()).all()
        assert (columnar.ends() == scalar.ends()).all()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_view_parity(self, seed):
        events = random_events(seed)
        scalar, columnar = build_both(events)
        assert list(columnar.kernels()) == list(scalar.kernels())
        assert list(columnar.memcpys()) == list(scalar.memcpys())
        for d in CopyKind:
            assert list(columnar.memcpys(d)) == list(scalar.memcpys(d))
        assert columnar.count_kind(EventKind.API) == scalar.count_kind(
            EventKind.API
        )
        assert list(
            columnar.of_kinds(EventKind.KERNEL, EventKind.MEMCPY)
        ) == list(scalar.of_kinds(EventKind.KERNEL, EventKind.MEMCPY))
        cg, sg = columnar.by_name(), scalar.by_name()
        assert list(cg) == list(sg)  # same names, same first-seen order
        for name in sg:
            assert list(cg[name]) == list(sg[name])
            assert cg[name].busy_time() == sg[name].busy_time()
        assert columnar.top_names_by_total_time(
            3
        ) == scalar.top_names_by_total_time(3)
        # Generic filter falls back to materialization, same result.
        pred = lambda e: e.thread % 2 == 0
        assert list(columnar.filter(pred)) == list(scalar.filter(pred))

    def test_empty_trace(self):
        columnar = ColumnarTrace(name="empty")
        assert len(columnar) == 0
        assert columnar.start == 0.0 and columnar.end == 0.0
        assert columnar.total_time() == 0.0
        assert columnar.busy_time() == 0.0
        assert columnar.max_concurrency() == 0
        assert columnar.threads() == []
        assert list(columnar) == []
        assert columnar.by_name() == {}


class TestTimelineParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_device_gaps_exact(self, seed):
        events = random_events(seed)
        scalar, columnar = build_both(events)
        if len(scalar.of_kinds(EventKind.KERNEL, EventKind.MEMCPY)) == 0:
            pytest.skip("no device activity in this stream")
        for min_gap in (0.0, 1e-5):
            ref = device_gaps_reference(scalar, min_gap)
            for trace in (columnar, scalar):
                got = device_gaps(trace, min_gap)
                assert got.gaps == ref.gaps
                assert got.busy_time == ref.busy_time
                assert got.span == ref.span

    @pytest.mark.parametrize("seed", SEEDS)
    def test_utilization_series_exact(self, seed):
        events = random_events(seed)
        scalar, columnar = build_both(events)
        if len(scalar.of_kinds(EventKind.KERNEL, EventKind.MEMCPY)) == 0:
            pytest.skip("no device activity in this stream")
        for window in (1e-4, 7e-4):
            rc, rb = utilization_series_reference(scalar, window)
            for trace in (columnar, scalar):
                c, b = utilization_series(trace, window)
                assert (c == rc).all()
                assert (b == rb).all()


class TestValidationAndStore:
    def test_record_fast_validates_like_traceevent(self):
        columnar = ColumnarTrace()
        with pytest.raises(ValueError, match="before it starts"):
            columnar.record_fast(EventKind.KERNEL, "k", 1.0, 0.5)
        with pytest.raises(ValueError, match="nbytes"):
            columnar.record_fast(EventKind.KERNEL, "k", 0.0, 1.0, nbytes=-1)
        with pytest.raises(ValueError, match="copy_kind"):
            columnar.record_fast(EventKind.MEMCPY, "m", 0.0, 1.0, nbytes=4)
        assert len(columnar) == 0

    def test_views_are_read_only(self):
        events = random_events(5, n=10)
        _, columnar = build_both(events)
        view = columnar.kernels()
        with pytest.raises(TypeError, match="filtered trace view"):
            view.record_fast(EventKind.KERNEL, "k", 0.0, 1.0)
        with pytest.raises(TypeError, match="root trace"):
            view.to_doc()

    def test_geometric_growth_accounting(self):
        store = ColumnStore(capacity=4)
        trace = ColumnarTrace(store=store)
        for i in range(33):
            trace.record_fast(EventKind.API, "call", float(i), float(i))
        stats = store.stats()
        assert stats["events"] == 33
        assert stats["growths"] == 4  # 4 -> 8 -> 16 -> 32 -> 64
        assert store.capacity == 64
        assert stats["interned_names"] == 1
        assert stats["bytes"] == store.nbytes_allocated > 0

    def test_store_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ColumnStore(capacity=0)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_json_doc_round_trip_bit_exact(self, seed):
        events = random_events(seed)
        _, columnar = build_both(events)
        doc = json.loads(json.dumps(columnar.to_doc()))
        again = ColumnarTrace.from_doc(doc)
        assert again.name == columnar.name
        assert list(again) == list(columnar)
        assert again.events_in_record_order() == (
            columnar.events_in_record_order()
        )
        assert again.busy_time() == columnar.busy_time()


class TestBulkAppend:
    """record_batch must be indistinguishable from a record_fast loop."""

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_batch_equals_scalar_loop(self, seed):
        rng = np.random.RandomState(seed)
        n = 200
        names = [str(rng.choice(NAMES)) for _ in range(n)]
        start = rng.randint(0, 50, size=n).astype(np.float64) * 1e-4
        end = start + rng.choice([0.0, 1e-5, 3e-4], size=n)
        stream = rng.randint(0, 4, size=n)
        nbytes = rng.randint(0, 1 << 20, size=n)
        thread = rng.randint(0, 8, size=n)

        looped = ColumnarTrace(name="t")
        for i in range(n):
            looped.record_fast(
                EventKind.KERNEL, names[i], float(start[i]), float(end[i]),
                stream=int(stream[i]), nbytes=int(nbytes[i]),
                thread=int(thread[i]),
            )
        batched = ColumnarTrace(name="t")
        batched.record_batch(
            EventKind.KERNEL, names, start, end,
            stream=stream, nbytes=nbytes, thread=thread,
        )
        assert list(batched) == list(looped)
        assert batched.events_in_record_order() == (
            looped.events_in_record_order()
        )
        assert batched.store.stats()["interned_names"] == (
            looped.store.stats()["interned_names"]
        )

    def test_shared_name_and_defaults(self):
        trace = ColumnarTrace(name="t")
        trace.record_batch(
            EventKind.API, "call", np.array([0.0, 1.0]), np.array([0.5, 2.0])
        )
        events = trace.events_in_record_order()
        assert [e.name for e in events] == ["call", "call"]
        assert all(e.stream is None for e in events)
        assert all(e.nbytes == 0 and e.thread == 0 for e in events)
        assert trace.store.stats()["interned_names"] == 1

    def test_batch_memcpy_needs_copy_kind(self):
        trace = ColumnarTrace(name="t")
        with pytest.raises(ValueError, match="copy_kind"):
            trace.record_batch(
                EventKind.MEMCPY, "cp", np.array([0.0]), np.array([1.0])
            )
        trace.record_batch(
            EventKind.MEMCPY, "cp", np.array([0.0]), np.array([1.0]),
            nbytes=np.array([64]), copy_kind=CopyKind.H2D,
        )
        assert trace.events_in_record_order()[0].copy_kind is CopyKind.H2D

    def test_batch_validation_reports_first_offender(self):
        trace = ColumnarTrace(name="t")
        with pytest.raises(ValueError, match="'b' ends"):
            trace.record_batch(
                EventKind.KERNEL, ["a", "b", "c"],
                np.array([0.0, 5.0, 1.0]), np.array([1.0, 4.0, 0.5]),
            )
        with pytest.raises(ValueError, match="align"):
            trace.record_batch(
                EventKind.KERNEL, ["a", "b"],
                np.array([0.0]), np.array([1.0, 2.0]),
            )
        with pytest.raises(ValueError, match="nbytes"):
            trace.record_batch(
                EventKind.KERNEL, "k", np.array([0.0]), np.array([1.0]),
                nbytes=np.array([-1]),
            )

    def test_views_reject_bulk_recording(self):
        trace = ColumnarTrace(name="t")
        trace.record_batch(
            EventKind.KERNEL, "k", np.array([0.0]), np.array([1.0])
        )
        with pytest.raises(TypeError):
            trace.kernels().record_batch(
                EventKind.KERNEL, "k", np.array([0.0]), np.array([1.0])
            )

    def test_single_grow_for_large_batch(self):
        store = ColumnStore(capacity=4)
        trace = ColumnarTrace(store=store)
        trace.record_batch(
            EventKind.KERNEL, "k",
            np.arange(1000, dtype=np.float64),
            np.arange(1000, dtype=np.float64) + 0.5,
        )
        assert store.stats()["events"] == 1000
        assert store.stats()["growths"] == 1  # one doubling sweep
        assert store.capacity == 1024
