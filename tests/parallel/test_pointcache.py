"""Tests for the content-addressed per-point result cache.

Covers the acceptance contract: a warm cache performs zero proxy runs,
extending the grid reuses every previously cached point, and changing
any ``ProxyConfig`` field or the cache version tag invalidates.
"""

import dataclasses

import pytest

import repro.parallel.point as point_mod
from repro.parallel import (
    PointCache,
    PointMeasurement,
    PointTask,
    point_key,
)
from repro.proxy import ProxyConfig, run_slack_sweep

GRID = dict(
    matrix_sizes=(512, 2048),
    slack_values_s=(1e-6, 1e-4),
    threads=(1, 2),
    iterations=5,
)


@pytest.fixture
def count_proxy_runs(monkeypatch):
    """Instrument run_proxy with a call counter (inline executor path)."""
    calls = []
    real = point_mod.run_proxy

    def counting(config, slack=None, **kwargs):
        calls.append((config, slack))
        return real(config, slack, **kwargs)

    monkeypatch.setattr(point_mod, "run_proxy", counting)
    return calls


class TestPointKey:
    CONFIG = ProxyConfig(matrix_size=512, threads=1, iterations=5)

    def test_stable(self):
        assert point_key(self.CONFIG, 1e-4) == point_key(self.CONFIG, 1e-4)

    def test_slack_changes_key(self):
        assert point_key(self.CONFIG, 1e-4) != point_key(self.CONFIG, 1e-3)

    def test_any_config_field_changes_key(self):
        base = point_key(self.CONFIG, 1e-4)
        for change in (
            {"matrix_size": 1024},
            {"threads": 2},
            {"iterations": 6},
            {"dtype_bytes": 8},
            {"target_compute_s": 10.0},
            {"phase_barrier": True},
            {"gpu": dataclasses.replace(self.CONFIG.gpu, fp32_tflops=9.7)},
        ):
            changed = dataclasses.replace(self.CONFIG, **change)
            assert point_key(changed, 1e-4) != base, change

    def test_version_tag_changes_key(self):
        assert point_key(self.CONFIG, 1e-4, version="a") != point_key(
            self.CONFIG, 1e-4, version="b"
        )


class TestCacheRoundTrip:
    def test_warm_cache_runs_zero_proxies(self, tmp_path, count_proxy_runs):
        cache = PointCache(tmp_path)
        first = run_slack_sweep(**GRID, workers=1, cache=cache)
        cold_calls = len(count_proxy_runs)
        assert cold_calls == first.timing.measured > 0

        second = run_slack_sweep(**GRID, workers=1, cache=cache)
        assert len(count_proxy_runs) == cold_calls  # zero new run_proxy calls
        assert second.timing.measured == 0
        assert second.timing.cached == first.timing.measured
        assert second.points == first.points
        assert second.skipped == first.skipped

    def test_grid_extension_reuses_all_cached_points(
        self, tmp_path, count_proxy_runs
    ):
        cache = PointCache(tmp_path)
        run_slack_sweep(**GRID, workers=1, cache=cache)
        before = len(count_proxy_runs)

        extended = dict(GRID, slack_values_s=(1e-6, 1e-4, 1e-2))
        result = run_slack_sweep(**extended, workers=1, cache=cache)
        # Exactly one new slack point per configuration; baselines and
        # the old slack values all come from the cache.
        configs = len(GRID["matrix_sizes"]) * len(GRID["threads"])
        assert len(count_proxy_runs) - before == configs
        assert result.timing.measured == configs
        assert result.timing.cached == configs * 3  # baseline + 2 old slacks

    def test_oom_failures_cached(self, tmp_path, count_proxy_runs):
        grid = dict(
            matrix_sizes=(2**15,), slack_values_s=(1e-6,), threads=(4,),
            iterations=5,
        )
        cache = PointCache(tmp_path)
        first = run_slack_sweep(**grid, workers=1, cache=cache)
        assert len(first.skipped) == 1
        before = len(count_proxy_runs)

        second = run_slack_sweep(**grid, workers=1, cache=cache)
        assert len(count_proxy_runs) == before  # OOM verdicts cached too
        assert second.skipped == first.skipped

    def test_cached_points_bitwise_equal(self, tmp_path):
        cache = PointCache(tmp_path)
        fresh = run_slack_sweep(**GRID, workers=1, cache=cache)
        cached = run_slack_sweep(**GRID, workers=1, cache=cache)
        # Floats survive the JSON round-trip exactly (repr round-trip).
        assert cached.points == fresh.points


class TestCacheInvalidation:
    def test_config_field_change_invalidates(self, tmp_path, count_proxy_runs):
        cache = PointCache(tmp_path)
        run_slack_sweep(**GRID, workers=1, cache=cache)
        before = len(count_proxy_runs)

        changed = dict(GRID, iterations=6)
        result = run_slack_sweep(**changed, workers=1, cache=cache)
        assert result.timing.cached == 0
        assert len(count_proxy_runs) - before == result.timing.measured > 0

    def test_version_tag_change_invalidates(self, tmp_path, count_proxy_runs):
        cache_v1 = PointCache(tmp_path, version="v1")
        run_slack_sweep(**GRID, workers=1, cache=cache_v1)
        before = len(count_proxy_runs)

        cache_v2 = PointCache(tmp_path, version="v2")
        result = run_slack_sweep(**GRID, workers=1, cache=cache_v2)
        assert result.timing.cached == 0
        assert len(count_proxy_runs) > before


class TestFaultPlanKeying:
    """Degraded and healthy points must never alias in the cache."""

    CONFIG = ProxyConfig(matrix_size=512, threads=1, iterations=5)

    @staticmethod
    def _plan(seed=42):
        from repro.faults import FaultPlan

        return FaultPlan.from_spec(f"seed={seed};loss:rate=1%")

    def test_fault_plan_changes_key(self):
        assert point_key(self.CONFIG, 1e-4, faults=self._plan()) != point_key(
            self.CONFIG, 1e-4
        )

    def test_seed_alone_changes_key(self):
        assert point_key(self.CONFIG, 1e-4, faults=self._plan(1)) != point_key(
            self.CONFIG, 1e-4, faults=self._plan(2)
        )

    def test_empty_plan_shares_key_with_none(self):
        from repro.faults import FaultPlan

        assert point_key(
            self.CONFIG, 1e-4, faults=FaultPlan(seed=7)
        ) == point_key(self.CONFIG, 1e-4)

    def test_cache_misses_when_only_fault_plan_differs(self, tmp_path):
        cache = PointCache(tmp_path)
        m = PointMeasurement(ok=True, loop_runtime_s=1.0)
        cache.put(self.CONFIG, 1e-4, m)
        assert cache.get(self.CONFIG, 1e-4) == m
        assert cache.get(self.CONFIG, 1e-4, self._plan()) is None
        degraded = PointMeasurement(ok=True, loop_runtime_s=2.0)
        cache.put(self.CONFIG, 1e-4, degraded, self._plan())
        assert cache.get(self.CONFIG, 1e-4, self._plan()) == degraded
        assert cache.get(self.CONFIG, 1e-4) == m  # healthy entry intact

    def test_degraded_sweep_does_not_reuse_healthy_points(
        self, tmp_path, count_proxy_runs
    ):
        cache = PointCache(tmp_path)
        grid = dict(
            matrix_sizes=(512,), slack_values_s=(1e-4,), threads=(1,),
            iterations=5,
        )
        run_slack_sweep(**grid, workers=1, cache=cache)
        before = len(count_proxy_runs)

        degraded = run_slack_sweep(
            **grid, workers=1, cache=cache, faults=self._plan()
        )
        # Every degraded point re-measures: zero healthy entries reused.
        assert degraded.timing.cached == 0
        assert len(count_proxy_runs) - before == degraded.timing.measured > 0

        # ... and the degraded run is itself warm on a second pass.
        again = run_slack_sweep(
            **grid, workers=1, cache=cache, faults=self._plan()
        )
        assert again.timing.measured == 0
        assert again.points == degraded.points


class TestCacheStore:
    CONFIG = ProxyConfig(matrix_size=512, threads=1, iterations=3)

    def test_get_miss_returns_none(self, tmp_path):
        assert PointCache(tmp_path).get(self.CONFIG, 1e-4) is None

    def test_put_get_roundtrip(self, tmp_path):
        cache = PointCache(tmp_path)
        m = PointMeasurement(
            ok=True, loop_runtime_s=1.25, corrected_runtime_s=1.2,
            iterations=3, kernel_time_s=0.01, injected_slack_s=0.05,
            starvation_cost_s=0.0, elapsed_s=0.5,
        )
        cache.put(self.CONFIG, 1e-4, m)
        assert cache.get(self.CONFIG, 1e-4) == m
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = PointCache(tmp_path)
        m = PointMeasurement(ok=True, loop_runtime_s=1.0)
        path = cache.put(self.CONFIG, 1e-4, m)
        path.write_text("{not json")
        assert cache.get(self.CONFIG, 1e-4) is None

    def test_clear_removes_everything(self, tmp_path):
        cache = PointCache(tmp_path)
        cache.put(self.CONFIG, 1e-4, PointMeasurement(ok=True))
        cache.put(self.CONFIG, 1e-3, PointMeasurement(ok=True))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(self.CONFIG, 1e-4) is None

    def test_executor_counts_cache_hits(self, tmp_path):
        from repro.parallel import SweepExecutor

        cache = PointCache(tmp_path)
        tasks = [PointTask(self.CONFIG, s) for s in (0.0, 1e-4)]
        ex = SweepExecutor(workers=1, cache=cache)
        ex.run(tasks)
        assert ex.stats.measured == 2 and ex.stats.cached == 0
        ex.run(tasks)
        assert ex.stats.measured == 0 and ex.stats.cached == 2


class TestConcurrentWrites:
    """put() must survive racing writers of the same entry (worker
    pools, shard subprocesses, shared network filesystems)."""

    CONFIG = ProxyConfig(matrix_size=512, threads=1, iterations=3)

    def test_lost_rename_race_is_counted_not_raised(
        self, tmp_path, monkeypatch
    ):
        from pathlib import Path

        cache = PointCache(tmp_path)
        m = PointMeasurement(ok=True, loop_runtime_s=1.0)

        def racing_replace(self, target):
            raise FileExistsError(target)  # non-atomic fs mid-race

        monkeypatch.setattr(Path, "replace", racing_replace)
        path = cache.put(self.CONFIG, 1e-4, m)  # must not raise
        assert cache.write_races == 1
        assert cache.writes == 0
        # The loser's temp file never litters the store.
        assert list(tmp_path.rglob("*.tmp")) == []

        monkeypatch.undo()
        assert cache.put(self.CONFIG, 1e-4, m) == path
        assert cache.writes == 1
        assert cache.get(self.CONFIG, 1e-4) == m

    def test_race_publishes_write_races_metric(self, tmp_path, monkeypatch):
        from pathlib import Path

        from repro.obs import collecting

        cache = PointCache(tmp_path)
        monkeypatch.setattr(
            Path, "replace", lambda self, target: (_ for _ in ()).throw(
                FileExistsError(target)
            )
        )
        with collecting() as reg:
            cache.put(self.CONFIG, 1e-4, PointMeasurement(ok=True))
            assert reg.counter("pointcache.write_races").value == 1

    def test_unwritable_store_does_not_crash_the_sweep(
        self, tmp_path, monkeypatch
    ):
        from pathlib import Path

        cache = PointCache(tmp_path)
        monkeypatch.setattr(
            Path,
            "write_text",
            lambda self, *a, **k: (_ for _ in ()).throw(OSError("full")),
        )
        cache.put(self.CONFIG, 1e-4, PointMeasurement(ok=True))
        assert cache.write_races == 1 and cache.writes == 0

    def test_same_content_writers_converge(self, tmp_path):
        # Two cache objects (two "hosts") writing the same point: both
        # succeed, the entry holds the shared content either way.
        a, b = PointCache(tmp_path), PointCache(tmp_path)
        m = PointMeasurement(ok=True, loop_runtime_s=2.5)
        assert a.put(self.CONFIG, 1e-4, m) == b.put(self.CONFIG, 1e-4, m)
        assert a.get(self.CONFIG, 1e-4) == m
        assert a.write_races == b.write_races == 0


