"""Sensitivity analysis of the reproduction's calibrated constants.

The simulator substitution introduces two constants the paper's real
hardware provided implicitly: the GPU's idle-ramp *fraction* (cost per
second of uncovered gap) and its *cap* (saturation). This module
quantifies how the headline quantities move as those constants vary —
the honesty check EXPERIMENTS.md's closing note refers to.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from ..hw import A100_SXM4_40GB, GPUSpec
from ..network import SlackModel
from ..proxy import ProxyConfig, run_proxy

__all__ = ["SensitivityPoint", "ramp_sensitivity", "cap_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline penalty at one parameter setting."""

    parameter: str
    value: float
    penalty: float


def _penalty(gpu: GPUSpec, matrix_size: int, slack_s: float,
             iterations: int = 20) -> float:
    config = ProxyConfig(matrix_size=matrix_size, iterations=iterations,
                         gpu=gpu)
    base = run_proxy(config)
    run = run_proxy(config, SlackModel(slack_s))
    return max(0.0, run.corrected_runtime_s / base.loop_runtime_s - 1.0)


def ramp_sensitivity(
    fractions: Sequence[float] = (0.45, 0.9, 1.8),
    matrix_size: int = 2**13,
    slack_s: float = 10e-3,
    iterations: int = 20,
) -> List[SensitivityPoint]:
    """Penalty at the 2^13/10 ms anchor vs the idle-ramp fraction.

    The paper's ~10% anchor pins the default (0.9); halving or
    doubling the fraction scales the penalty near-proportionally,
    which is what "calibrated, not derived" means.
    """
    points = []
    for f in fractions:
        if f < 0:
            raise ValueError("ramp fraction must be non-negative")
        gpu = replace(A100_SXM4_40GB, idle_ramp_fraction=f)
        points.append(
            SensitivityPoint(
                parameter="idle_ramp_fraction",
                value=f,
                penalty=_penalty(gpu, matrix_size, slack_s, iterations),
            )
        )
    return points


def cap_sensitivity(
    caps_s: Sequence[float] = (5e-3, 25e-3, 125e-3),
    matrix_size: int = 2**15,
    slack_s: float = 1.0,
    iterations: int = 3,
) -> List[SensitivityPoint]:
    """Penalty at the 2^15/1 s immunity anchor vs the idle-ramp cap.

    The paper observed 2^15 unaffected up to 1 s of slack; the cap is
    the mechanism. The default (25 ms) keeps the penalty under 1%;
    a 5x larger cap violates the anchor.
    """
    points = []
    for cap in caps_s:
        if cap < 0:
            raise ValueError("cap must be non-negative")
        gpu = replace(A100_SXM4_40GB, idle_ramp_cap_s=cap)
        points.append(
            SensitivityPoint(
                parameter="idle_ramp_cap_s",
                value=cap,
                penalty=_penalty(gpu, matrix_size, slack_s, iterations),
            )
        )
    return points
