"""Metrics primitives and the enable/disable lifecycle."""

import time

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    collecting,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)
from repro.obs.metrics import _NULL_INSTRUMENT, _NULL_REGISTRY


@pytest.fixture(autouse=True)
def _metrics_disabled():
    """Every test starts and ends in the default (disabled) state."""
    disable_metrics()
    yield
    disable_metrics()


# -- instruments -------------------------------------------------------------

def test_counter_accumulates_and_rejects_decrease():
    c = Counter("cache.hits")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert c.to_doc() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("des.heap_depth")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13.0


def test_histogram_percentiles_exact():
    h = Histogram("x")
    for v in range(1, 101):  # 1..100
        h.observe(v)
    assert h.count == 100
    assert h.min == 1 and h.max == 100
    assert h.mean == pytest.approx(50.5)
    # Linear interpolation between closest ranks (numpy default).
    assert h.percentile(0) == 1
    assert h.percentile(100) == 100
    assert h.percentile(50) == pytest.approx(50.5)
    assert h.percentile(90) == pytest.approx(90.1)


def test_histogram_percentiles_match_numpy():
    np = pytest.importorskip("numpy")
    values = [3.2, -1.0, 7.5, 7.5, 0.0, 12.25, 5.0]
    h = Histogram("x")
    for v in values:
        h.observe(v)
    for p in (0, 10, 25, 50, 75, 90, 99, 100):
        assert h.percentile(p) == pytest.approx(
            float(np.percentile(values, p))
        ), f"p{p}"


def test_histogram_interleaves_observe_and_percentile():
    h = Histogram("x")
    h.observe(10)
    h.observe(20)
    assert h.percentile(25) == pytest.approx(12.5)
    h.observe(0)  # invalidates the sorted cache
    assert h.percentile(50) == 10


def test_histogram_empty_and_doc():
    h = Histogram("x")
    assert h.to_doc() == {"count": 0, "sum": 0.0}
    with pytest.raises(ValueError):
        h.percentile(50)
    h.observe(2.0)
    doc = h.to_doc()
    assert doc["count"] == 1
    assert set(doc) == {
        "count", "sum", "mean", "min", "p50", "p90", "p99", "max"
    }


def test_percentile_out_of_range():
    h = Histogram("x")
    h.observe(1)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_timer_observes_elapsed():
    reg = MetricsRegistry()
    with reg.timer("sweep.step_s"):
        time.sleep(0.001)
    h = reg.get("sweep.step_s")
    assert h.count == 1
    assert h.min > 0


# -- registry ----------------------------------------------------------------

def test_registry_get_or_create_is_shared():
    reg = MetricsRegistry()
    assert reg.counter("a.hits") is reg.counter("a.hits")
    reg.counter("a.hits").inc()
    reg.counter("a.hits").inc()
    assert reg.counter("a.hits").value == 2


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("a.x")
    with pytest.raises(TypeError):
        reg.gauge("a.x")


def test_registry_to_doc_sections():
    reg = MetricsRegistry()
    reg.counter("des.events").inc(3)
    reg.gauge("executor.workers").set(4)
    reg.histogram("executor.wall_s").observe(1.0)
    doc = reg.to_doc()
    assert doc["des"]["events"] == 3
    assert doc["executor"]["workers"] == 4
    assert doc["executor"]["wall_s"]["count"] == 1
    assert "des.events" in reg
    assert len(reg) == 3


# -- lifecycle ---------------------------------------------------------------

def test_disabled_by_default_returns_null_singletons():
    assert not metrics_enabled()
    reg = get_registry()
    assert reg is _NULL_REGISTRY
    assert isinstance(reg, NullRegistry)
    # Every instrument lookup is the one shared no-op object: the
    # disabled path allocates nothing and records nothing.
    assert reg.counter("a.b") is _NULL_INSTRUMENT
    assert reg.gauge("c.d") is reg.histogram("e.f") is reg.timer("g.h")
    reg.counter("a.b").inc(5)
    with reg.timer("g.h"):
        pass
    assert reg.to_doc() == {}
    assert len(reg) == 0


def test_disabled_overhead_stays_negligible():
    """Budget guard: publishing through the null registry is ~free.

    200k disabled counter increments must complete in well under a
    second on any host that can run the test suite at all — the bound
    is deliberately loose (no flaky micro-benchmarking), the identity
    assertions above are the real zero-allocation guarantee.
    """
    reg = get_registry()
    assert not reg.enabled
    t0 = time.perf_counter()
    for _ in range(200_000):
        reg.counter("des.events_dispatched").inc()
    assert time.perf_counter() - t0 < 1.0


def test_enable_disable_swaps_registry():
    reg = enable_metrics()
    assert metrics_enabled()
    assert get_registry() is reg
    reg.counter("a.b").inc()
    disable_metrics()
    assert not metrics_enabled()
    assert reg.counter("a.b").value == 1  # data survives on the object


def test_collecting_restores_prior_state():
    with collecting() as reg:
        assert get_registry() is reg
        reg.counter("x.y").inc()
    assert not metrics_enabled()
    # Nested: inner scope swaps in, outer scope comes back.
    with collecting() as outer:
        with collecting() as inner:
            assert get_registry() is inner
        assert get_registry() is outer
    assert not metrics_enabled()


def test_collecting_accepts_existing_registry():
    mine = MetricsRegistry()
    with collecting(mine) as reg:
        assert reg is mine
        get_registry().counter("a.b").inc()
    assert mine.counter("a.b").value == 1
