"""LAMMPS GPU-package offload simulation: the traced profile.

Runs the LJ benchmark's CPU-GPU interaction pattern on the simulated
CUDA runtime, producing the kernel-duration and memcpy-size
distributions the paper extracts with NSys (Figures 4-5, Table III).

Per MPI rank, per timestep (the GPU package's data path):

* pack + H2D positions (mixed precision: 12 B/atom);
* launch the LJ pair-force kernel over the rank's subdomain;
* D2H forces (double precision: 24 B/atom);
* CPU-side integration/neighbour bookkeeping (a timeout);
* a per-step BSP barrier standing in for the MPI halo exchange.

Every ``neighbor_every`` steps a rank additionally rebuilds its
neighbour list: one small H2D (bin metadata) plus a longer build
kernel. These knobs reproduce Table III's LAMMPS row: ~84k transfers
at box 120 / 8 ranks / 5000 steps, bulk in the (1, 16] MiB (positions)
and (16, 256] MiB (forces) bins plus ~2.3k sub-MiB neighbour updates.

The run is structured as *epochs* of ``neighbor_every`` timesteps (one
full neighbour-rebuild cycle) so the steady-state fast-forward engine
(:mod:`repro.des.fastforward`) can certify a cycle, cap the simulation
and extrapolate the remainder analytically — same profile, a fraction
of the events. Jittered configurations (the default: real NSys traces
wobble) are ineligible and always run in full; the profile records
which happened in :attr:`~repro.apps.base.AppProfile.fastforward`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

import numpy as np

from ...des import Barrier, Environment, Event, quantize
from ...des.fastforward import (
    EpochMonitor,
    FastForwardInfo,
    app_refusal_reason,
)
from ...faults import FaultPlan
from ...gpusim import CudaRuntime, KernelSpec
from ...hw import A100_SXM4_40GB, GPUSpec, PCIE_GEN4_X16, PCIeSpec
from ...network import SlackModel
from ...trace import CopyKind, EventKind
from ..base import AppProfile, publish_fastforward
from .lj import LJParams
from .scaling import LammpsScalingModel

__all__ = ["LammpsProfileConfig", "profile_lammps"]

#: Mixed-precision position upload: x, y, z as float32 (12 B/atom).
POSITION_BYTES_PER_ATOM = 12
#: Double-precision force download: fx, fy, fz as float64 (24 B/atom).
FORCE_BYTES_PER_ATOM = 24
#: A100 LJ pair-force throughput, seconds per atom-step (approximately
#: 1e9 atom-steps/s, consistent with published GPU-package numbers).
PAIR_SECONDS_PER_ATOM = 1.0e-9
#: Neighbour rebuild cadence in steps (LAMMPS default every ~10-20).
NEIGHBOR_EVERY = 17


@dataclass(frozen=True)
class LammpsProfileConfig:
    """Configuration of one traced LAMMPS run."""

    params: LJParams = field(default_factory=lambda: LJParams(box_size=120))
    processes: int = 8
    threads: int = 1
    gpu: GPUSpec = field(default_factory=lambda: A100_SXM4_40GB)
    pcie: PCIeSpec = field(default_factory=lambda: PCIE_GEN4_X16)
    jitter: float = 0.10
    seed: int = 2024
    neighbor_every: int = NEIGHBOR_EVERY

    def __post_init__(self) -> None:
        if self.processes <= 0 or self.threads <= 0:
            raise ValueError("processes and threads must be positive")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if self.neighbor_every <= 0:
            raise ValueError("neighbor_every must be positive")


def profile_lammps(
    config: Optional[LammpsProfileConfig] = None,
    slack: Optional[SlackModel] = None,
    *,
    fast_forward: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
) -> AppProfile:
    """Run the traced LAMMPS simulation and return its profile.

    Parameters
    ----------
    fast_forward:
        Steady-state fast-forward (default on): once one
        neighbour-rebuild epoch is certified bit-exactly periodic, the
        remaining epochs are extrapolated analytically instead of
        simulated — same profile, O(warmup) events. Jittered
        configurations, non-base slack models, active fault plans and
        runs of fewer than :data:`~repro.des.fastforward.MIN_ITERATIONS`
        epochs always run the full simulation;
        ``profile.fastforward`` records what happened.
    faults:
        Optional :class:`~repro.faults.FaultPlan` degrading the fabric
        for this run. Active plans refuse fast-forward
        (``reason="faults-active"``).
    """
    config = config or LammpsProfileConfig()
    slack_model = slack or SlackModel.none()
    env = Environment()
    injector = faults.compile(env) if faults is not None else None
    rt = CudaRuntime(
        env, gpu=config.gpu, pcie=config.pcie, slack=slack_model,
        faults=injector,
    )
    rng = np.random.default_rng(config.seed)
    scaling = LammpsScalingModel()

    params = config.params
    P = config.processes
    atoms_local = params.atoms_per_process(P)
    pos_bytes = int(atoms_local * POSITION_BYTES_PER_ATOM)
    force_bytes = int(atoms_local * FORCE_BYTES_PER_ATOM)
    neigh_bytes = max(1, int(atoms_local * 0.5))  # bin/half-neigh metadata

    # CPU work per rank per step, from the calibrated scaling model.
    eff = scaling.thread_efficiency(config.threads)
    cpu_step = (
        scaling.cpu_fraction
        * scaling.work_s(params)
        / (P * config.threads * eff)
        / params.steps
    )
    comm_step = scaling.comm_s(params, P) / params.steps
    pair_time = atoms_local * PAIR_SECONDS_PER_ATOM

    def jittered(mean: float) -> float:
        if config.jitter == 0:
            return mean
        sigma = np.sqrt(np.log(1 + config.jitter**2))
        return float(rng.lognormal(np.log(mean) - sigma**2 / 2, sigma))

    step_barrier = Barrier(env, P)

    # One epoch = one full neighbour-rebuild cycle of timesteps. A
    # step's index within its epoch equals its residue modulo
    # ``neighbor_every`` in the whole run, so the rebuild cadence is
    # preserved whether or not the epoch loop gets capped — including
    # for the tail steps of a step count that is not a multiple of the
    # cadence.
    total_epochs = params.steps // config.neighbor_every
    tail_steps = params.steps % config.neighbor_every

    enabled = True if fast_forward is None else bool(fast_forward)
    reason = "disabled" if not enabled else app_refusal_reason(
        slack_model,
        faults=injector,
        jitter=config.jitter,
        epochs=total_epochs,
    )
    monitor = EpochMonitor(env, rt, P, total_epochs) if (
        enabled and reason is None
    ) else None

    def timestep(
        stream: Any, rank_id: int, substep: int
    ) -> Generator[Event, Any, None]:
        # CPU-side force prep / previous-step integration. CPU delays
        # are tick-quantized like every simulated device delay, so the
        # whole run stays on the dyadic grid fast-forward needs.
        yield env.timeout(quantize(jittered(cpu_step) / 2))
        if substep == 0:
            yield from rt.memcpy(neigh_bytes, CopyKind.H2D, stream, rank_id)
            yield from rt.launch(
                KernelSpec(
                    name="k_neigh_build",
                    duration_s=jittered(pair_time * 2.5),
                ),
                stream,
                rank_id,
            )
        yield from rt.memcpy(pos_bytes, CopyKind.H2D, stream, rank_id)
        yield from rt.launch(
            KernelSpec(
                name="k_lj_cut_force", duration_s=jittered(pair_time)
            ),
            stream,
            rank_id,
        )
        yield from rt.memcpy(force_bytes, CopyKind.D2H, stream, rank_id)
        # CPU-side integration + MPI halo exchange (BSP step).
        yield env.timeout(quantize(jittered(cpu_step) / 2 + comm_step))
        yield step_barrier.wait()

    def rank(rank_id: int) -> Generator[Event, Any, None]:
        stream = rt.create_stream()
        epoch = 0
        while epoch < (
            monitor.stop_at if monitor is not None else total_epochs
        ):
            for substep in range(config.neighbor_every):
                yield from timestep(stream, rank_id, substep)
            epoch += 1
            if monitor is not None:
                monitor.epoch_done(rank_id)
        for substep in range(tail_steps):
            yield from timestep(stream, rank_id, substep)

    def main() -> Generator[Event, Any, float]:
        t0 = env.now
        ranks = [env.process(rank(r), name=f"mpi-rank-{r}") for r in range(P)]
        yield env.all_of(ranks)
        yield from rt.synchronize()
        return env.now - t0

    main_proc = env.process(main(), name="lammps-main")
    env.run()

    setup_s = LammpsScalingModel().setup_s
    if monitor is not None and monitor.certified:
        ex = monitor.extrapolate(float(main_proc.value))
        runtime = ex.loop_runtime_s + setup_s
        trace = ex.trace
        info = ex.info
    else:
        if monitor is not None:
            # Eligible but never certified: the run completed as a
            # full simulation on its own.
            reason = "no-fixed-point"
        runtime = float(main_proc.value) + setup_s
        trace = rt.tracer.trace
        info = FastForwardInfo(enabled=enabled, certified=False, reason=reason)
    publish_fastforward(info)
    # Cheap on a RepeatedEpochTrace: counted from the compression
    # recipe without expanding the event list.
    api_calls = trace.count_kind(EventKind.API)
    return AppProfile(
        name="lammps",
        trace=trace,
        runtime_s=runtime,
        # One kernel launcher per MPI rank (the paper reads 8 from its
        # traces at this configuration).
        queue_parallelism=P,
        cuda_calls_per_second=api_calls / runtime,
        fastforward=info,
    )
