"""Report primitives: tables and series the experiments emit.

Each experiment reproduces one paper artifact as a :class:`Table`
(rows/columns) or a :class:`Series` (a figure's line data), plus
free-text notes recording paper-vs-measured deltas. ``render()``
produces the monospace form printed by the CLI and captured in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Table", "Series", "ExperimentResult", "fmt"]


def fmt(value: Any, precision: int = 4) -> str:
    """Format one cell: floats compactly, everything else via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A paper-style table: headers plus rows of cells."""

    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append a row (must match the header count)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def column(self, header: str) -> List[Any]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Monospace rendering with aligned columns."""
        cells = [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass
class Series:
    """A figure's data: shared x values and one y-list per label."""

    title: str
    x_label: str
    y_label: str
    x: List[float] = field(default_factory=list)
    lines: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_line(self, label: str, ys: Sequence[Optional[float]]) -> None:
        """Add one labelled line (length must match x)."""
        ys = list(ys)
        if len(ys) != len(self.x):
            raise ValueError(
                f"line {label!r} has {len(ys)} points, x has {len(self.x)}"
            )
        self.lines[label] = ys

    def render(self) -> str:
        """Monospace rendering: one column per x, one row per line."""
        lines = [self.title, f"x = {self.x_label}; y = {self.y_label}"]
        header = ["series"] + [fmt(v) for v in self.x]
        rows = [
            [label] + [fmt(y) if y is not None else "-" for y in ys]
            for label, ys in self.lines.items()
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def ascii_chart(self, height: int = 12, log_y: bool = False) -> str:
        """A terminal line chart of the series (one glyph per line).

        Each series gets a letter (a, b, c ...); points landing on the
        same cell show the later series' letter. ``log_y`` plots
        log10(y), the natural scale for the slack-penalty figures.
        """
        import math

        if height < 3:
            raise ValueError("height must be >= 3")
        if not self.lines:
            raise ValueError("series has no lines to chart")
        values = [
            (math.log10(y) if log_y else y)
            for ys in self.lines.values()
            for y in ys
            if y is not None and (not log_y or y > 0)
        ]
        if not values:
            raise ValueError("no plottable values")
        lo, hi = min(values), max(values)
        span = (hi - lo) or 1.0
        width = len(self.x)
        grid = [[" "] * width for _ in range(height)]
        glyphs = "abcdefghijklmnopqrstuvwxyz"
        legend = []
        for idx, (label, ys) in enumerate(self.lines.items()):
            glyph = glyphs[idx % len(glyphs)]
            legend.append(f"{glyph}={label}")
            for col, y in enumerate(ys):
                if y is None or (log_y and y <= 0):
                    continue
                v = math.log10(y) if log_y else y
                row = int(round((v - lo) / span * (height - 1)))
                grid[height - 1 - row][col] = glyph
        axis_hi = fmt(10**hi if log_y else hi)
        axis_lo = fmt(10**lo if log_y else lo)
        label_w = max(len(axis_hi), len(axis_lo))
        out = [self.title]
        for i, row in enumerate(grid):
            prefix = axis_hi if i == 0 else axis_lo if i == height - 1 else ""
            out.append(f"{prefix:>{label_w}} |" + " ".join(row))
        out.append(" " * label_w + " +" + "-" * (2 * width - 1))
        out.append(" " * label_w + "  " +
                   " ".join(fmt(v)[0] for v in self.x))
        out.append(f"x: {', '.join(fmt(v) for v in self.x)}")
        out.append("   ".join(legend))
        return "\n".join(out)


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    tables: List[Table] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Render all artifacts of the experiment."""
        parts = [f"=== {self.experiment_id} ==="]
        for t in self.tables:
            parts.append(t.render())
        for s in self.series:
            parts.append(s.render())
        for note in self.notes:
            parts.append(f"NOTE: {note}")
        return "\n\n".join(parts)
