"""Degraded-mode response surfaces: penalty vs. slack vs. fault intensity.

The healthy-fabric sweep (:func:`repro.proxy.run_slack_sweep`) answers
"what does slack cost?". This module answers the production question
on top of it: "what does slack cost *while the fabric is misbehaving*,
and how fast does that cost grow with fault intensity?" —
:func:`run_degraded_sweep` runs the same grid once per intensity step
of a scaled :class:`~repro.faults.FaultPlan` (``plan.scaled(x)``) and
collects the per-intensity surfaces side by side.

Intensity 0 is the healthy fabric (an empty plan — bit-identical to a
sweep with no ``faults=`` at all); intensity 1 is the plan as written;
values above 1 stress beyond it. Every run inherits the sweep layer's
determinism: same plan + seed ⇒ bit-identical points across workers,
cache, and repeated invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel import PointCache
    from ..proxy import SweepResult

__all__ = ["DegradedSweepResult", "run_degraded_sweep"]

#: Default intensity steps: healthy baseline, half strength, as-written.
DEFAULT_INTENSITIES: Tuple[float, ...] = (0.0, 0.5, 1.0)


@dataclass
class DegradedSweepResult:
    """Per-intensity slack sweeps of one scaled fault plan."""

    plan: FaultPlan
    intensities: Tuple[float, ...]
    #: One full :class:`~repro.proxy.SweepResult` per intensity, in
    #: ``intensities`` order.
    sweeps: List["SweepResult"] = field(default_factory=list)

    def sweep_at(self, intensity: float) -> "SweepResult":
        """The sweep measured at one intensity step."""
        for x, sweep in zip(self.intensities, self.sweeps):
            if x == intensity:
                return sweep
        raise KeyError(intensity)

    def penalty_surface(
        self, matrix_size: int, threads: int
    ) -> Dict[float, Dict[float, float]]:
        """``{intensity: {slack_s: penalty}}`` for one configuration.

        Penalties are clamped at 0 like the healthy response surface
        (free-running threads can hide slack, driving the Equation-1
        residual slightly negative).
        """
        surface: Dict[float, Dict[float, float]] = {}
        for x, sweep in zip(self.intensities, self.sweeps):
            row: Dict[float, float] = {}
            for p in sweep.series(matrix_size, threads):
                row[p.slack_s] = max(0.0, p.penalty)
            surface[x] = row
        return surface

    def faults_totals(self) -> Dict[float, Dict[str, float]]:
        """Summed ``faults.*`` telemetry per intensity (from reports).

        Empty for intensities swept without metrics enabled.
        """
        totals: Dict[float, Dict[str, float]] = {}
        for x, sweep in zip(self.intensities, self.sweeps):
            row: Dict[str, float] = {}
            if sweep.report is not None:
                for metric, value in sweep.report.metrics.get(
                    "faults", {}
                ).items():
                    row[f"faults.{metric}"] = value
            totals[x] = row
        return totals


def run_degraded_sweep(
    plan: FaultPlan,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    *,
    matrix_sizes: Optional[Sequence[int]] = None,
    slack_values_s: Optional[Sequence[float]] = None,
    threads: Sequence[int] = (1,),
    iterations: Optional[int] = None,
    workers: Optional[int] = 1,
    cache: Optional["PointCache"] = None,
) -> DegradedSweepResult:
    """Measure the slack response surface at several fault intensities.

    Runs :func:`repro.proxy.run_slack_sweep` once per intensity with
    ``faults=plan.scaled(x)``. All sweep knobs default to the sweep
    layer's defaults (``None`` = the paper's grid); ``cache`` may be
    shared across intensities — the point cache keys on the scaled
    plan, so intensities never alias each other (and intensity 0
    shares entries with healthy sweeps).
    """
    from ..proxy import run_slack_sweep
    from ..proxy.sweep import PAPER_MATRIX_SIZES, PAPER_SLACK_VALUES_S

    xs = tuple(float(x) for x in intensities)
    if not xs:
        raise ValueError("at least one intensity is required")
    if any(x < 0 for x in xs):
        raise ValueError("intensities must be non-negative")
    plan.validate()

    result = DegradedSweepResult(plan=plan, intensities=xs)
    for x in xs:
        result.sweeps.append(
            run_slack_sweep(
                matrix_sizes=(
                    matrix_sizes if matrix_sizes is not None
                    else PAPER_MATRIX_SIZES
                ),
                slack_values_s=(
                    slack_values_s if slack_values_s is not None
                    else PAPER_SLACK_VALUES_S
                ),
                threads=threads,
                iterations=iterations,
                workers=workers,
                cache=cache,
                faults=plan.scaled(x),
            )
        )
    return result
