"""Unit tests for hardware specifications."""

import pytest

from repro.hw import (
    A100_SXM4_40GB,
    CPUSpec,
    EPYC_7413,
    GiB,
    GPUSpec,
    NARVAL_NODE,
    NodeSpec,
    PCIeSpec,
)


class TestPCIeSpec:
    def test_gen4_x16_effective_bandwidth(self):
        spec = PCIeSpec()
        # 16 lanes * 16 Gbps / 8 = 32 GB/s raw, 25.6 GB/s at 80%.
        assert spec.raw_bandwidth_Bps == pytest.approx(32e9)
        assert spec.effective_bandwidth_Bps == pytest.approx(25.6e9)

    def test_transfer_time_includes_latency(self):
        spec = PCIeSpec()
        t = spec.transfer_time(0)
        assert t == pytest.approx(spec.latency_s)

    def test_transfer_time_scales_with_bytes(self):
        spec = PCIeSpec()
        t1 = spec.transfer_time(GiB)
        t2 = spec.transfer_time(2 * GiB)
        assert t2 - t1 == pytest.approx(GiB / spec.effective_bandwidth_Bps)

    def test_one_gib_transfer_time_magnitude(self):
        # 1 GiB over ~25.6 GB/s is ~42 ms.
        t = PCIeSpec().transfer_time(GiB)
        assert 0.03 < t < 0.06

    def test_invalid_lane_count_rejected(self):
        with pytest.raises(ValueError):
            PCIeSpec(lanes=3)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            PCIeSpec(efficiency=0.0)
        with pytest.raises(ValueError):
            PCIeSpec(efficiency=1.5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIeSpec().transfer_time(-1)


class TestGPUSpec:
    def test_a100_defaults(self):
        assert A100_SXM4_40GB.memory_bytes == 40 * GiB
        assert A100_SXM4_40GB.peak_flops == pytest.approx(19.5e12)

    def test_starvation_cost_zero_for_no_gap(self):
        assert A100_SXM4_40GB.starvation_cost(0.0) == 0.0
        assert A100_SXM4_40GB.starvation_cost(-1.0) == 0.0

    def test_starvation_cost_linear_region(self):
        gpu = GPUSpec(idle_ramp_fraction=0.9, idle_ramp_cap_s=25e-3)
        assert gpu.starvation_cost(1e-3) == pytest.approx(0.9e-3)

    def test_starvation_cost_saturates(self):
        gpu = GPUSpec(idle_ramp_fraction=0.9, idle_ramp_cap_s=25e-3)
        assert gpu.starvation_cost(1.0) == pytest.approx(25e-3)
        assert gpu.starvation_cost(100.0) == pytest.approx(25e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUSpec(fp32_tflops=0)
        with pytest.raises(ValueError):
            GPUSpec(memory_bytes=0)
        with pytest.raises(ValueError):
            GPUSpec(idle_ramp_fraction=-1)


class TestCPUSpec:
    def test_epyc_defaults(self):
        assert EPYC_7413.cores == 24

    def test_peak_flops_per_core(self):
        cpu = CPUSpec(base_clock_ghz=2.0, flops_per_cycle=16)
        assert cpu.peak_flops_per_core == pytest.approx(32e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CPUSpec(cores=0)


class TestNodeSpec:
    def test_narval_layout(self):
        # 2 sockets x 24 cores, 4 GPUs -> 12 cores per GPU.
        assert NARVAL_NODE.total_cores == 48
        assert NARVAL_NODE.cores_per_gpu == 12.0

    def test_cpu_only_node(self):
        node = NodeSpec(gpus=0)
        assert node.cores_per_gpu == float("inf")

    def test_with_gpus_copy(self):
        node = NARVAL_NODE.with_gpus(8)
        assert node.gpus == 8
        assert NARVAL_NODE.gpus == 4  # original untouched
        assert node.cores_per_gpu == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(sockets=0)
        with pytest.raises(ValueError):
            NodeSpec(gpus=-1)
