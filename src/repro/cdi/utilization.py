"""Utilization analysis: the Discussion-section scheduling example.

Quantifies the paper's Section V argument on a concrete inventory —
40 GPUs and 20 CPUs (24 cores each), with LAMMPS and CosmoFlow both
asking for 20 GPUs:

* traditional nodes force a fixed 1:2 CPU:GPU ratio on both jobs and
  trap resources;
* CDI gives CosmoFlow 4 CPUs for its 20 tightly-coupled GPUs and
  leaves LAMMPS the other 16 CPUs, a far better ratio for its
  CPU-heavy compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .resources import CPUNode, GPUChassis, ResourcePool
from .scheduler import (
    CDIScheduler,
    JobRequest,
    ScheduleOutcome,
    TraditionalScheduler,
)

__all__ = ["SchedulingComparison", "compare_schedulers", "discussion_example"]


@dataclass(frozen=True)
class SchedulingComparison:
    """Side-by-side outcome of the two scheduling disciplines."""

    traditional: ScheduleOutcome
    cdi: ScheduleOutcome

    def trapped_core_reduction(self) -> int:
        """Cores CDI frees versus traditional scheduling."""
        return self.traditional.trapped_cores - self.cdi.trapped_cores

    def trapped_gpu_reduction(self) -> int:
        """Idle-powered GPUs CDI frees versus traditional scheduling."""
        return self.traditional.trapped_gpus - self.cdi.trapped_gpus

    def ratio_improvement(self, job: str) -> float:
        """Achieved/requested ratio distance improvement for ``job``.

        Returns the reduction in |achieved - ideal| CPU:GPU ratio
        going from traditional to CDI (positive = CDI closer to the
        job's ideal). The CDI request expresses the job's true ideal
        ratio — under traditional scheduling users can only ask in
        node-shaped units.
        """
        trad = self.traditional.placement(job)
        cdi = self.cdi.placement(job)
        want = cdi.requested_ratio
        if want == float("inf"):
            return 0.0
        return abs(trad.cores_per_gpu - want) - abs(cdi.cores_per_gpu - want)


def compare_schedulers(
    traditional_jobs: List[JobRequest],
    cdi_jobs: List[JobRequest],
    node_count: int,
    cores_per_node: int,
    gpus_per_node: int,
    pool: ResourcePool,
) -> SchedulingComparison:
    """Schedule jobs under both disciplines on equivalent hardware.

    The two request lists carry the same job names but may differ in
    shape: under traditional scheduling users ask in node-shaped units
    (GPU counts; cores are whatever comes attached), while CDI
    requests express each job's true ideal ratio.
    """
    traditional = TraditionalScheduler(
        node_count=node_count,
        cores_per_node=cores_per_node,
        gpus_per_node=gpus_per_node,
    ).schedule(traditional_jobs)
    cdi = CDIScheduler(pool).schedule(cdi_jobs)
    return SchedulingComparison(traditional=traditional, cdi=cdi)


def discussion_example() -> SchedulingComparison:
    """The paper's Section V example: 40 GPUs, 20 CPUs, two 20-GPU jobs.

    LAMMPS wants a high CPU:GPU ratio (its strong-scaling results);
    CosmoFlow needs ~2 cores per few GPUs and wants the GPUs tightly
    coupled. Traditional nodes (each 1 CPU of 24 cores + 2 GPUs) give
    both jobs 10 nodes — the forced 1:2 CPU:GPU ratio; CDI composes
    CosmoFlow with 4 CPUs' worth of cores and one chassis, leaving
    LAMMPS the other 16 CPUs for its 20 GPUs.
    """
    # Traditional asks: both jobs can only say "20 GPUs" (10 nodes).
    traditional_jobs = [
        JobRequest(name="lammps", cores=24, gpus=20),
        JobRequest(name="cosmoflow", cores=4, gpus=20),
    ]
    # CDI asks: the jobs' actual ideal shapes.
    cdi_jobs = [
        # LAMMPS: every core it can get for 20 GPUs (16 CPUs' worth).
        JobRequest(name="lammps", cores=16 * 24, gpus=20),
        # CosmoFlow: 4 CPUs' worth covers its input pipelines.
        JobRequest(name="cosmoflow", cores=4 * 24, gpus=20),
    ]
    pool = ResourcePool(
        nodes=[CPUNode(node_id=f"cpu{i}", sockets=1) for i in range(20)],
        chassis=[
            GPUChassis(chassis_id=f"chassis{i}", gpu_count=20, rack=i)
            for i in range(2)
        ],
    )
    return compare_schedulers(
        traditional_jobs,
        cdi_jobs,
        node_count=20,
        cores_per_node=24,
        gpus_per_node=2,
        pool=pool,
    )
