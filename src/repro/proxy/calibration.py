"""Proxy calibration: iteration counts and kernel baselines (Sec III-C).

The paper's proxy first times a single kernel, then sizes the main
compute loop to ~30 seconds of raw GPU compute, clamped to [5, 1000]
iterations so small kernels (with proportionally noisier runtimes)
still get enough repetitions and huge kernels don't run for hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..des import Environment
from ..gpusim import CudaRuntime, matmul_kernel
from ..hw import A100_SXM4_40GB, GPUSpec, PCIE_GEN4_X16, PCIeSpec

__all__ = [
    "TARGET_COMPUTE_SECONDS",
    "ITERATION_FLOOR",
    "ITERATION_CEILING",
    "calibrate_iterations",
    "time_single_kernel",
    "KernelCalibration",
    "calibrate_matrix_size",
]

#: The paper's compute budget for the main loop.
TARGET_COMPUTE_SECONDS = 30.0
#: The paper's iteration-count bounds.
ITERATION_FLOOR = 5
ITERATION_CEILING = 1000


def calibrate_iterations(
    kernel_time_s: float,
    target_s: float = TARGET_COMPUTE_SECONDS,
    floor: int = ITERATION_FLOOR,
    ceiling: int = ITERATION_CEILING,
) -> int:
    """Iterations for ~``target_s`` of raw GPU compute, clamped.

    >>> calibrate_iterations(1.0)
    30
    >>> calibrate_iterations(100.0)  # huge kernel -> floor
    5
    >>> calibrate_iterations(1e-6)  # tiny kernel -> ceiling
    1000
    """
    if kernel_time_s <= 0:
        raise ValueError("kernel_time_s must be positive")
    if floor < 1 or ceiling < floor:
        raise ValueError("need 1 <= floor <= ceiling")
    n = int(round(target_s / kernel_time_s))
    return max(floor, min(ceiling, n))


def time_single_kernel(
    matrix_size: int,
    gpu: GPUSpec = A100_SXM4_40GB,
    pcie: PCIeSpec = PCIE_GEN4_X16,
    dtype_bytes: int = 4,
) -> float:
    """The proxy's preliminary kernel timing (paper Section III-C).

    Times the matmul *inside one realistic loop iteration* (copies in,
    kernel, copy out) rather than in isolation: an in-loop kernel pays
    the structural few-microsecond re-priming cost after the host-side
    call turnaround, so calibrating this way makes the Table II marks
    line up exactly with the kernel durations loop traces show — which
    is what the binning of Section IV-D compares against.
    """
    from ..trace import CopyKind  # local import to avoid cycles

    env = Environment()
    rt = CudaRuntime(env, gpu=gpu, pcie=pcie)
    kernel = matmul_kernel(matrix_size, dtype_bytes)
    nbytes = matrix_size * matrix_size * dtype_bytes

    def host():
        yield from rt.memcpy(nbytes, CopyKind.H2D)
        yield from rt.memcpy(nbytes, CopyKind.H2D)
        yield from rt.launch(kernel, blocking=True)
        yield from rt.memcpy(nbytes, CopyKind.D2H)
        yield from rt.synchronize()

    env.process(host())
    env.run()
    kernels = rt.tracer.trace.kernels()
    return float(kernels[0].duration)


@dataclass(frozen=True)
class KernelCalibration:
    """Everything Table II reports for one matrix size."""

    matrix_size: int
    matrix_bytes: int
    kernel_time_s: float
    iterations: int

    @property
    def raw_compute_s(self) -> float:
        """Total kernel time the calibrated loop will spend."""
        return self.kernel_time_s * self.iterations


def calibrate_matrix_size(
    matrix_size: int,
    gpu: GPUSpec = A100_SXM4_40GB,
    pcie: PCIeSpec = PCIE_GEN4_X16,
    dtype_bytes: int = 4,
    target_s: float = TARGET_COMPUTE_SECONDS,
) -> KernelCalibration:
    """Time the kernel and derive the loop's iteration count."""
    kernel_time = time_single_kernel(matrix_size, gpu, pcie, dtype_bytes)
    return KernelCalibration(
        matrix_size=matrix_size,
        matrix_bytes=matrix_size * matrix_size * dtype_bytes,
        kernel_time_s=kernel_time,
        iterations=calibrate_iterations(kernel_time, target_s=target_s),
    )
