"""Hardware specifications for the simulated testbed.

Defaults model the Digital Research Alliance of Canada's *Narval*
cluster nodes used in the paper: two AMD EPYC Milan 7413 CPUs (24
cores each) and four NVIDIA A100-SXM4-40GB GPUs, GPUs attached over
PCIe Gen4 x16.

Specs are plain frozen dataclasses so experiment configurations can be
constructed declaratively and hashed/compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = [
    "GiB",
    "MiB",
    "KiB",
    "GPUSpec",
    "CPUSpec",
    "PCIeSpec",
    "NodeSpec",
    "A100_SXM4_40GB",
    "EPYC_7413",
    "PCIE_GEN4_X16",
    "NARVAL_NODE",
]

KiB = 1024
MiB = 1024**2
GiB = 1024**3


@dataclass(frozen=True)
class PCIeSpec:
    """A PCIe link configuration.

    Parameters
    ----------
    generation:
        PCIe generation (3, 4, 5...). Only used for bookkeeping.
    lanes:
        Lane count (x1..x16).
    per_lane_gbps:
        Raw signalling rate per lane in Gbit/s (16 for Gen4).
    efficiency:
        Fraction of raw bandwidth achievable for bulk DMA after
        encoding and protocol overhead (~0.8 measured for Gen4).
    latency_s:
        One-way link latency for a minimum-sized transaction.
    """

    generation: int = 4
    lanes: int = 16
    per_lane_gbps: float = 16.0
    efficiency: float = 0.80
    latency_s: float = 0.5e-6

    def __post_init__(self) -> None:
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid PCIe lane count {self.lanes}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.per_lane_gbps <= 0:
            raise ValueError("per_lane_gbps must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    @property
    def raw_bandwidth_Bps(self) -> float:
        """Raw aggregate bandwidth in bytes/second."""
        return self.lanes * self.per_lane_gbps * 1e9 / 8.0

    @property
    def effective_bandwidth_Bps(self) -> float:
        """Achievable bulk-transfer bandwidth in bytes/second."""
        return self.raw_bandwidth_Bps * self.efficiency

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over the link (latency + serialization)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.effective_bandwidth_Bps


@dataclass(frozen=True)
class GPUSpec:
    """A GPU's compute and memory characteristics.

    The defaults describe an NVIDIA A100-SXM4-40GB: 19.5 TFLOP/s FP32
    peak, 40 GiB HBM2e at 1555 GB/s. The latency-hiding parameters
    (``launch_overhead_s``, ``idle_ramp_cap_s``) encode the observable
    costs that slack uncovers:

    * every kernel launch pays ``launch_overhead_s`` of host-visible
      setup, which is *hidden* while the device queue is non-empty and
      *exposed* when the GPU is starved;
    * after an idle gap the device additionally pays a warm-up cost
      that grows with the gap (clock/power-state ramp, scheduler
      re-priming) and saturates at ``idle_ramp_cap_s``.
    """

    name: str = "A100-SXM4-40GB"
    fp32_tflops: float = 19.5
    memory_bytes: int = 40 * GiB
    memory_bandwidth_Bps: float = 1555e9
    sm_count: int = 108
    max_resident_kernels: int = 128
    launch_overhead_s: float = 4.0e-6
    idle_ramp_fraction: float = 0.9
    idle_ramp_cap_s: float = 25.0e-3
    min_kernel_time_s: float = 2.5e-6

    def __post_init__(self) -> None:
        if self.fp32_tflops <= 0:
            raise ValueError("fp32_tflops must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.launch_overhead_s < 0 or self.min_kernel_time_s < 0:
            raise ValueError("overheads must be non-negative")
        if self.idle_ramp_fraction < 0:
            raise ValueError("idle_ramp_fraction must be non-negative")
        if self.idle_ramp_cap_s < 0:
            raise ValueError("idle_ramp_cap_s must be non-negative")

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s."""
        return self.fp32_tflops * 1e12

    def starvation_cost(self, idle_gap_s: float) -> float:
        """Extra execution time charged after an idle gap of ``idle_gap_s``.

        This is the GPU-starvation mechanism the paper isolates with
        Equation 1: cost grows linearly with the uncovered idle gap
        (``idle_ramp_fraction`` per second of gap) and saturates at
        ``idle_ramp_cap_s``. A busy queue has gap 0 and pays nothing.
        """
        if idle_gap_s <= 0:
            return 0.0
        return min(self.idle_ramp_fraction * idle_gap_s, self.idle_ramp_cap_s)


@dataclass(frozen=True)
class CPUSpec:
    """A CPU socket's characteristics (default: AMD EPYC Milan 7413)."""

    name: str = "EPYC-7413"
    cores: int = 24
    base_clock_ghz: float = 2.65
    flops_per_cycle: float = 16.0
    smt: int = 2

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.base_clock_ghz <= 0:
            raise ValueError("base_clock_ghz must be positive")

    @property
    def peak_flops_per_core(self) -> float:
        """Peak FLOP/s of a single core."""
        return self.base_clock_ghz * 1e9 * self.flops_per_cycle


@dataclass(frozen=True)
class NodeSpec:
    """A heterogeneous compute node: sockets, GPUs and the PCIe fabric."""

    cpu: CPUSpec = field(default_factory=CPUSpec)
    sockets: int = 2
    gpu: GPUSpec = field(default_factory=GPUSpec)
    gpus: int = 4
    pcie: PCIeSpec = field(default_factory=PCIeSpec)

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ValueError("sockets must be positive")
        if self.gpus < 0:
            raise ValueError("gpus must be non-negative")

    @property
    def total_cores(self) -> int:
        """All physical cores on the node."""
        return self.cpu.cores * self.sockets

    @property
    def cores_per_gpu(self) -> float:
        """The node's fixed CPU:GPU core ratio (inf for CPU-only nodes)."""
        if self.gpus == 0:
            return float("inf")
        return self.total_cores / self.gpus

    def with_gpus(self, gpus: int) -> "NodeSpec":
        """A copy of this node with a different GPU count."""
        return replace(self, gpus=gpus)


#: The paper's GPU: NVIDIA A100-SXM4 40 GiB.
A100_SXM4_40GB = GPUSpec()

#: The paper's CPU: AMD EPYC Milan 7413, 24 cores.
EPYC_7413 = CPUSpec()

#: PCIe Gen4 x16, the A100-SXM4 host link.
PCIE_GEN4_X16 = PCIeSpec()

#: A Narval-like node: 2x EPYC 7413 + 4x A100-40GB.
NARVAL_NODE = NodeSpec()
