"""Shared fixtures for serving tests: fast synthetic sweeps.

The surrogate and service are exercised against fabricated
:class:`~repro.proxy.SweepPoint` grids (microseconds to build) rather
than real DES runs; only the cold-path tests touch the simulator.
"""

import numpy as np
import pytest

from repro.proxy import SlackResponseSurface, SweepPoint, SweepResult
from repro.serve import SurrogateModel

#: The synthetic fitting grid: two sizes, two thread counts, seven
#: log-spaced slacks — every series viable, every penalty positive.
SIZES = (512, 2048)
THREADS = (1, 2)
SLACKS = tuple(np.logspace(-6, -3, 7))


def penalty_law(matrix_size, threads, slack_s):
    """A smooth, monotone synthetic penalty (percent)."""
    scale = {512: 40.0, 2048: 2.0}[matrix_size] / threads
    return scale * (slack_s / 1e-3) ** 0.8


def make_point(matrix_size, threads, slack_s, penalty):
    """Fabricate a sweep point with a prescribed penalty."""
    return SweepPoint(
        matrix_size=matrix_size,
        threads=threads,
        slack_s=slack_s,
        loop_runtime_s=1.0 + penalty + 5 * slack_s,
        corrected_runtime_s=1.0 + penalty,
        baseline_runtime_s=1.0,
        iterations=10,
        kernel_time_s={512: 50e-6, 2048: 1.5e-3}[matrix_size],
    )


def make_sweep(sizes=SIZES, threads=THREADS, slacks=SLACKS, law=penalty_law):
    sweep = SweepResult()
    for n in sizes:
        for t in threads:
            for s in slacks:
                sweep.add(make_point(n, t, s, law(n, t, s)))
    return sweep


@pytest.fixture(scope="module")
def sweep():
    return make_sweep()


@pytest.fixture(scope="module")
def surface(sweep):
    return SlackResponseSurface(sweep)


@pytest.fixture(scope="module")
def model(sweep):
    return SurrogateModel.fit(sweep)
