"""Production application models: LAMMPS (CPU-heavy), CosmoFlow
(GPU-dominant), the CPU-only category, and LLM inference serving
(latency-sensitive) — enumerated uniformly by the app registry."""

from .base import AppProfile, ApplicationModel
from .cpuonly import (
    CpuOnlyApp,
    CpuOnlyProfileConfig,
    profile_cpuonly,
    trapped_gpu_analysis,
)
from .profilecache import PROFILE_CACHE_VERSION, AppProfileCache, profile_key
from .cosmoflow import (
    COSMOFLOW_REQUIRED_CORES,
    CosmoFlowNet,
    CosmoFlowProfileConfig,
    cosmoflow_cpu_runtime,
    profile_cosmoflow,
)
from .lammps import (
    LJParams,
    LammpsProfileConfig,
    LammpsScalingModel,
    PAPER_BOX_SIZES,
    profile_lammps,
)
from .inference import (
    InferenceProfileConfig,
    InferenceRunResult,
    LLMSpec,
    SLOReport,
    SLOResponse,
    measure_slo_response,
    phase_profile,
    predict_slo_response,
    profile_inference,
    run_inference,
)
from .registry import (
    PenaltyMetric,
    RegisteredApp,
    app_model_version,
    app_names,
    get_app,
    register_app,
    registered_apps,
)

__all__ = [
    "AppProfile",
    "ApplicationModel",
    "AppProfileCache",
    "PROFILE_CACHE_VERSION",
    "profile_key",
    "LJParams",
    "LammpsScalingModel",
    "LammpsProfileConfig",
    "profile_lammps",
    "PAPER_BOX_SIZES",
    "CosmoFlowNet",
    "CosmoFlowProfileConfig",
    "profile_cosmoflow",
    "cosmoflow_cpu_runtime",
    "COSMOFLOW_REQUIRED_CORES",
    "CpuOnlyApp",
    "CpuOnlyProfileConfig",
    "profile_cpuonly",
    "trapped_gpu_analysis",
    "LLMSpec",
    "InferenceProfileConfig",
    "InferenceRunResult",
    "SLOReport",
    "SLOResponse",
    "run_inference",
    "profile_inference",
    "measure_slo_response",
    "phase_profile",
    "predict_slo_response",
    "PenaltyMetric",
    "RegisteredApp",
    "register_app",
    "get_app",
    "registered_apps",
    "app_names",
    "app_model_version",
]
