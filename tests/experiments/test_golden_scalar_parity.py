"""Golden parity: vectorized pipeline vs. scalar reference, byte for byte.

The PR's acceptance criterion: every figure/table artifact produced by
the vectorized pipeline (columnar traces, ``np.searchsorted`` binning,
matrix-product ``predict_sweep``) must be **byte-identical** — compared
as canonical sorted-keys JSON — to the same experiment run through the
retained scalar implementations (legacy ``Trace`` objects, per-value
``bin_values_reference`` loop, per-slack ``predict_sweep_reference``).
"""

import dataclasses
import json

import pytest

from repro.experiments import ExperimentContext, run_experiment
from repro.model import CDIProfiler
from repro.model.reference import bin_values_reference, predict_sweep_reference
from repro.trace import Trace

#: The paper artifacts the acceptance criterion names.
GOLDEN_IDS = [
    "figure1", "figure2", "figure3", "figure4", "figure5",
    "table1", "table2", "table3", "table4",
]


def canonical(result):
    """An ExperimentResult as canonical bytes."""
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


@pytest.fixture(scope="module")
def golden_pair():
    """{experiment id: (vectorized json, scalar-reference json)}."""
    vec_ctx = ExperimentContext(quick=True)
    vec = {i: canonical(run_experiment(i, vec_ctx)) for i in GOLDEN_IDS}

    # A second context sharing the surface, but with every vectorized
    # layer forced back to its scalar reference: profiles carry legacy
    # scalar Trace objects (so Figure 4/5 analysis runs the base-class
    # loops) and the model pipeline routes through the reference
    # implementations.
    sca_ctx = ExperimentContext(quick=True)
    sca_ctx._surface = vec_ctx.surface()
    for app in ("lammps", "cosmoflow"):
        profile = vec_ctx._profiles[app]
        sca_ctx._profiles[app] = dataclasses.replace(
            profile,
            trace=Trace(list(profile.trace), name=profile.trace.name),
        )
    mp = pytest.MonkeyPatch()
    try:
        mp.setattr("repro.model.binning.bin_values", bin_values_reference)
        mp.setattr(
            CDIProfiler,
            "predict_sweep",
            lambda self, profile, slacks, parallelism=None: (
                predict_sweep_reference(self, profile, slacks, parallelism)
            ),
        )
        sca = {i: canonical(run_experiment(i, sca_ctx)) for i in GOLDEN_IDS}
    finally:
        mp.undo()
    return vec, sca


@pytest.mark.parametrize("experiment_id", GOLDEN_IDS)
def test_artifact_byte_identical(golden_pair, experiment_id):
    vec, sca = golden_pair
    assert vec[experiment_id] == sca[experiment_id]
