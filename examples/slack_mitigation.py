#!/usr/bin/env python
"""Slack mitigation playbook: what to do when a workload is intolerant.

Starts from a deliberately bad case — a tiny-kernel loop at
millisecond slack, where the naive port suffers badly — and applies
the three mitigations the simulator models, measuring each:

1. batch the loop into a CUDA graph (one API call per iteration);
2. feed the GPU from more concurrent submitters;
3. co-schedule small kernels by SM occupancy.

Run:  python examples/slack_mitigation.py
"""

from repro.des import Environment
from repro.gpusim import CudaGraph, CudaRuntime, matmul_kernel
from repro.network import SlackModel
from repro.trace import CopyKind

N = 512
ITERS = 40
SLACK = 1e-3  # a deliberately hostile 1 ms per call


def baseline_loop(slack_s, threads=1, concurrent=False):
    """The naive synchronous loop, optionally multi-threaded."""
    env = Environment()
    rt = CudaRuntime(env, slack=SlackModel(slack_s),
                     concurrent_kernels=concurrent)
    nbytes = N * N * 4
    kernel = matmul_kernel(N)

    def worker(tid):
        stream = rt.create_stream()
        for _ in range(ITERS):
            yield from rt.memcpy(nbytes, CopyKind.H2D, stream, tid)
            yield from rt.memcpy(nbytes, CopyKind.H2D, stream, tid)
            yield from rt.launch(kernel, stream, tid, blocking=True)
            yield from rt.memcpy(nbytes, CopyKind.D2H, stream, tid)
            yield from rt.synchronize(stream=stream, thread=tid)

    def main():
        t0 = env.now
        workers = [env.process(worker(t)) for t in range(threads)]
        yield env.all_of(workers)
        return env.now - t0

    proc = env.process(main())
    env.run()
    return proc.value


def graphed_loop(slack_s):
    """The same loop captured as one CUDA graph per iteration."""
    env = Environment()
    rt = CudaRuntime(env, slack=SlackModel(slack_s))
    nbytes = N * N * 4
    graph = (
        CudaGraph(rt, name="iteration")
        .add_memcpy(nbytes, CopyKind.H2D)
        .add_memcpy(nbytes, CopyKind.H2D)
        .add_kernel(matmul_kernel(N))
        .add_memcpy(nbytes, CopyKind.D2H)
        .instantiate()
    )

    def main():
        t0 = env.now
        for _ in range(ITERS):
            yield from graph.launch(blocking=True)
        return env.now - t0

    proc = env.process(main())
    env.run()
    return proc.value


def overhead(with_slack, without_slack):
    return 100.0 * (with_slack / without_slack - 1.0)


def main() -> None:
    print(f"workload: {ITERS}x [2 H2D + sgemm_{N} + D2H + sync], "
          f"slack {SLACK * 1e3:.0f} ms per call\n")

    naive = overhead(baseline_loop(SLACK), baseline_loop(0.0))
    print(f"0. naive synchronous port          : +{naive:7.1f}% "
          f"(5 calls x 1 ms each iteration, plus starvation)")

    graphed = overhead(graphed_loop(SLACK), graphed_loop(0.0))
    print(f"1. CUDA-graph batched iterations   : +{graphed:7.1f}% "
          f"(one call per iteration: ~5x less exposure)")

    threaded = overhead(
        baseline_loop(SLACK, threads=8), baseline_loop(0.0, threads=8)
    )
    print(f"2. eight concurrent submitters     : +{threaded:7.1f}% "
          f"(other threads' work fills the gaps)")

    combined = overhead(
        baseline_loop(SLACK, threads=8, concurrent=True),
        baseline_loop(0.0, threads=8, concurrent=True),
    )
    print(f"3. + SM-occupancy co-scheduling    : +{combined:7.1f}% "
          f"(small kernels share the device)")

    print("\ntakeaway: an application that looks slack-intolerant under "
          "naive per-call submission usually has software paths back "
          "inside the tolerance — batching and parallel feeding are the "
          "same levers the paper identifies (long kernels, or many "
          "short ones in flight).")


if __name__ == "__main__":
    main()
