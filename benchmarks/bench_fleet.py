"""Benchmark: the vectorized fleet engine vs. the generator DES.

The fleet engine (:mod:`repro.cdi.fleet`) replaces the per-job
generator processes of ``simulate_traditional``/``simulate_cdi`` with
an index-based event core over numpy job-state columns. Its contract
is *parity before speedup*: per-job *bit*-parity (wait / start / end,
cores-grant time, trapped core- and GPU-seconds) is asserted on the
full benchmark stream for both scheduling modes **before** any timing
is reported. Three legs:

* ``traditional`` — 100k-job stream, whole-node scheduling, fleet
  engine vs. the scalar reference twin;
* ``cdi`` — the same stream against the two-pool CDI discipline
  (the harder case: two-stage admission, hold-and-wait accounting);
* ``scale`` — a million-job stream through the fleet engine alone
  (the generator DES at that scale is minutes, which is the point),
  reported as jobs/sec.

Both engine legs must clear a 20x speedup floor. Results land in
``BENCH_fleet.json`` at the repo root, next to ``BENCH_sweep.json``
(see docs/performance.md for methodology).
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cdi import (
    ClusterSpec,
    FleetJobs,
    assert_fleet_parity,
    run_fleet,
    simulate_cdi,
    simulate_traditional,
    synthetic_job_mix,
)

#: Where the perf artifact lands (repo root, next to BENCH_sweep.json).
FLEET_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

#: Minimum acceptable fleet-vs-generator-DES speedup (both modes).
FLEET_SPEEDUP_FLOOR = 20.0

#: Benchmark stream: >= 100k jobs on a pool-scale machine.
BENCH_JOBS = 100_000
SCALE_JOBS = 1_000_000
BENCH_CLUSTER = ClusterSpec(nodes=64)

#: Sections accumulated by the tests and flushed at module teardown.
_SECTIONS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_artifact():
    yield
    if not _SECTIONS:
        return
    doc = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    doc.update(_SECTIONS)
    FLEET_ARTIFACT.write_text(json.dumps(doc, indent=1, sort_keys=True))


@pytest.fixture(scope="module")
def stream():
    """The shared 100k-job stream (columnar + SimJob views)."""
    sim_jobs = synthetic_job_mix(
        BENCH_JOBS,
        rng=np.random.default_rng(7),
        mean_interarrival_s=20.0,
        cluster=BENCH_CLUSTER,
    )
    return FleetJobs.from_sim_jobs(sim_jobs), sim_jobs


def _best_of(fn, repeats=3):
    """Best wall time of ``repeats`` runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _bench_mode(mode, stream):
    jobs, sim_jobs = stream
    reference = simulate_cdi if mode == "cdi" else simulate_traditional

    # Parity before speedup: every per-job metric bit-identical.
    t0 = time.perf_counter()
    assert_fleet_parity(jobs, BENCH_CLUSTER, mode)
    parity_s = time.perf_counter() - t0

    fleet_s, result = _best_of(lambda: run_fleet(jobs, BENCH_CLUSTER, mode))
    ref_s, _ = _best_of(lambda: reference(sim_jobs, BENCH_CLUSTER), repeats=1)
    speedup = ref_s / fleet_s
    _SECTIONS[mode] = {
        "jobs": len(jobs),
        "nodes": BENCH_CLUSTER.nodes,
        "parity": "bit-exact per-job (wait/start/end, cores grant, "
                  "trapped core/gpu seconds)",
        "parity_check_s": parity_s,
        "fleet_s": fleet_s,
        "generator_des_s": ref_s,
        "fleet_jobs_per_sec": len(jobs) / fleet_s,
        "speedup": speedup,
        "speedup_floor": FLEET_SPEEDUP_FLOOR,
        "mean_wait_s": result.mean_wait_s,
        "core_utilization": result.core_utilization,
    }
    assert speedup >= FLEET_SPEEDUP_FLOOR, (
        f"{mode} fleet speedup {speedup:.1f}x below the "
        f"{FLEET_SPEEDUP_FLOOR:.0f}x floor"
    )


def test_bench_fleet_traditional(stream):
    _bench_mode("traditional", stream)


def test_bench_fleet_cdi(stream):
    _bench_mode("cdi", stream)


def test_bench_fleet_scale():
    sim_jobs = synthetic_job_mix(
        SCALE_JOBS,
        rng=np.random.default_rng(11),
        mean_interarrival_s=2.0,
        cluster=BENCH_CLUSTER,
    )
    jobs = FleetJobs.from_sim_jobs(sim_jobs)
    fleet_s, result = _best_of(
        lambda: run_fleet(jobs, BENCH_CLUSTER, "cdi"), repeats=1
    )
    _SECTIONS["scale"] = {
        "jobs": len(jobs),
        "nodes": BENCH_CLUSTER.nodes,
        "fleet_s": fleet_s,
        "fleet_jobs_per_sec": len(jobs) / fleet_s,
        "makespan_days": result.makespan_s / 86400.0,
    }
    # Sanity, not speed: the run completed and every job was placed.
    assert float(result.wait_s.min()) >= 0.0
