"""Per-table/figure experiment runners (see DESIGN.md's index).

Every table and figure of the paper's evaluation has a runner here;
``run_experiment(id)`` regenerates its rows/series from the simulator.
"""

from .context import ExperimentContext, default_cache_dir
from .export import results_to_markdown, write_markdown_report
from .report import ExperimentResult, Series, Table
from .runner import EXPERIMENTS, experiment_ids, run_all, run_experiment

__all__ = [
    "ExperimentContext",
    "default_cache_dir",
    "ExperimentResult",
    "Table",
    "Series",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
    "run_all",
    "results_to_markdown",
    "write_markdown_report",
]
