"""Benchmark: regenerate Figure 1 (path decomposition per scale)."""

from repro.experiments import run_experiment


def test_bench_figure1(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("figure1", ctx), rounds=3, iterations=1
    )
    print_result(result)
    slacks = result.tables[0].column("slack [us]")
    assert all(b > a for a, b in zip(slacks, slacks[1:]))
    assert max(slacks) < 100  # all scales far below the tolerance
