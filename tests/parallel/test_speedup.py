"""Wall-clock speedup of the parallel sweep engine.

The acceptance bar: on a >= 4-core runner, the paper's quick grid runs
at least 2x faster with a worker pool than sequentially, while
producing exactly equal points. Single- and dual-core environments
skip the ratio assertion (the pool cannot win there) but the parity
contract is still covered by tests/parallel/test_executor.py.
"""

import os

import pytest

from repro.parallel import PointCache, fork_available
from repro.proxy import (
    PAPER_MATRIX_SIZES,
    PAPER_SLACK_VALUES_S,
    PAPER_THREAD_COUNTS,
    run_slack_sweep,
)

#: The paper's quick grid (the surface ExperimentContext builds), with
#: enough iterations that compute dominates pool startup.
QUICK_PAPER_GRID = dict(
    matrix_sizes=PAPER_MATRIX_SIZES,
    slack_values_s=PAPER_SLACK_VALUES_S,
    threads=PAPER_THREAD_COUNTS,
    iterations=40,
)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4 or not fork_available(),
    reason="speedup bar needs >= 4 cores and fork",
)
def test_quick_grid_speedup_at_least_2x():
    workers = min(os.cpu_count() or 1, 8)
    sequential = run_slack_sweep(**QUICK_PAPER_GRID, workers=1)
    parallel = run_slack_sweep(**QUICK_PAPER_GRID, workers=workers)

    assert parallel.points == sequential.points
    assert parallel.skipped == sequential.skipped
    assert parallel.timing.mode == "process"

    speedup = sequential.timing.wall_s / parallel.timing.wall_s
    assert speedup >= 2.0, (
        f"parallel sweep only {speedup:.2f}x faster "
        f"({sequential.timing.wall_s:.2f}s -> {parallel.timing.wall_s:.2f}s "
        f"with {workers} workers)"
    )


def test_cache_hit_counts_parity_inline_vs_pool(tmp_path):
    """SweepTiming counts cache hits identically on every execution path.

    The inline (workers=1) loop and the process pool must report the
    same cached/measured split for the same warm cache — the numbers
    come from the shared cache-resolution pass, not from the execution
    backend.
    """
    grid = dict(
        matrix_sizes=[256], slack_values_s=[1e-5, 1e-4],
        threads=[1], iterations=5,
    )
    n_points = 3  # baseline + two slack values

    cold = run_slack_sweep(**grid, workers=1,
                           cache=PointCache(tmp_path / "points"))
    assert cold.timing.grid_points == n_points
    assert (cold.timing.cached, cold.timing.measured) == (0, n_points)

    warm_inline = run_slack_sweep(**grid, workers=1,
                                  cache=PointCache(tmp_path / "points"))
    assert (warm_inline.timing.cached, warm_inline.timing.measured) == (
        n_points, 0
    )

    if fork_available() and (os.cpu_count() or 1) >= 2:
        warm_pool = run_slack_sweep(**grid, workers=2,
                                    cache=PointCache(tmp_path / "points"))
        assert (warm_pool.timing.cached, warm_pool.timing.measured) == (
            warm_inline.timing.cached, warm_inline.timing.measured
        )
        assert warm_pool.points == warm_inline.points == cold.points
