"""Table II: proxy matrix sizes, kernel runtimes, iteration counts and
compute-loop runtimes."""

from __future__ import annotations

from ..hw import MiB
from ..network import SlackModel
from ..proxy import (
    PAPER_MATRIX_SIZES,
    ProxyConfig,
    calibrate_matrix_size,
    run_proxy,
)
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce Table II by calibrating and timing the proxy."""
    ctx = ctx or ExperimentContext()
    table = Table(
        title="Table II: proxy characteristics per matrix size",
        headers=[
            "Matrix Size",
            "Matrix [MiB]",
            "Kernel Runtime [s]",
            "Iterations (N)",
            "Compute Loop Runtime [s]",
        ],
    )
    for n in PAPER_MATRIX_SIZES:
        cal = calibrate_matrix_size(n)
        iterations = cal.iterations if not ctx.quick else min(cal.iterations, 25)
        result = run_proxy(
            ProxyConfig(matrix_size=n, iterations=iterations),
            SlackModel.none(),
        )
        table.add_row(
            f"2^{n.bit_length() - 1}",
            cal.matrix_bytes // MiB,
            cal.kernel_time_s,
            cal.iterations,
            result.loop_runtime_s
            * (cal.iterations / iterations if ctx.quick else 1.0),
        )
    table.notes.append(
        "iteration counts: ~30 s of raw GPU compute clamped to [5, 1000]; "
        "2^9 hits the ceiling, 2^15 sits near the floor"
    )
    if ctx.quick:
        table.notes.append(
            "quick mode: loop runtime extrapolated from 25 measured iterations"
        )
    return ExperimentResult(experiment_id="table2", tables=[table])
