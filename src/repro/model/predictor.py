"""The CDI profiler: end-to-end slack-penalty prediction (Sec IV-D).

Given an application's traced profile (kernel durations, memcpy sizes,
runtime fractions, queue parallelism) and the proxy's slack response
surface, predict the total slack penalty the application would suffer
at a target slack value — as the paper's lower/upper bound pair.

The pipeline is exactly the paper's: bin the kernel-duration and
transfer-size distributions onto the proxy matrix grid (both
roundings), apply Equation 3 per category, then Equation 2 across
categories with the measured ``%Runtime`` weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..apps.base import AppProfile
from ..proxy import SlackResponseSurface, calibrate_matrix_size
from .binning import BinnedDistribution, bin_kernel_durations, bin_transfer_sizes
from .equations import equation2_total_slack_penalty, equation3_binned_slack_penalty

__all__ = ["SlackPrediction", "CDIProfiler"]


@dataclass(frozen=True)
class SlackPrediction:
    """The predicted slack penalty for one application at one slack."""

    app: str
    slack_s: float
    parallelism: int
    lower: float
    upper: float
    sp_kernel_lower: float
    sp_kernel_upper: float
    sp_memory_lower: float
    sp_memory_upper: float
    runtime_fraction_kernel: float
    runtime_fraction_memory: float

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-12:
            raise ValueError("lower bound exceeds upper bound")

    @property
    def lower_percent(self) -> float:
        """Lower bound as a percentage."""
        return 100.0 * self.lower

    @property
    def upper_percent(self) -> float:
        """Upper bound as a percentage."""
        return 100.0 * self.upper


class CDIProfiler:
    """Predicts application slack penalties from traces + the proxy surface.

    Parameters
    ----------
    surface:
        The proxy's measured slack response surface.
    kernel_times:
        Proxy single-kernel times per matrix size (Table II). If
        omitted, they are calibrated on demand from the simulator.
    """

    def __init__(
        self,
        surface: SlackResponseSurface,
        kernel_times: Optional[Mapping[int, float]] = None,
    ) -> None:
        self.surface = surface
        if kernel_times is None:
            kernel_times = {
                n: calibrate_matrix_size(n).kernel_time_s
                for n in surface.matrix_sizes()
            }
        missing = set(surface.matrix_sizes()) - set(kernel_times)
        if missing:
            raise ValueError(f"kernel_times missing grid sizes {sorted(missing)}")
        self.kernel_times = dict(kernel_times)

    # -- binning ------------------------------------------------------------------
    def bin_profile(
        self, profile: AppProfile
    ) -> Dict[str, BinnedDistribution]:
        """Bracket the profile's kernels and transfers onto the grid."""
        grid = self.surface.matrix_sizes()
        kernels = profile.trace.kernels()
        copies = profile.trace.memcpys()
        if len(kernels) == 0:
            raise ValueError(f"profile {profile.name!r} has no kernels")
        if len(copies) == 0:
            raise ValueError(f"profile {profile.name!r} has no memcpys")
        return {
            "kernel": bin_kernel_durations(
                kernels.durations(),
                {n: self.kernel_times[n] for n in grid},
            ),
            "memory": bin_transfer_sizes(copies.sizes(), grid),
        }

    # -- prediction -----------------------------------------------------------------
    def predict(
        self,
        profile: AppProfile,
        slack_s: float,
        parallelism: Optional[int] = None,
    ) -> SlackPrediction:
        """Predict the application's total slack penalty at ``slack_s``."""
        if slack_s < 0:
            raise ValueError("slack_s must be non-negative")
        par = parallelism if parallelism is not None else profile.queue_parallelism
        bins = self.bin_profile(profile)

        penalties = {
            n: self.surface.penalty(n, slack_s, threads=par)
            for n in self.surface.matrix_sizes()
        }
        sp_kernel_lower = equation3_binned_slack_penalty(
            bins["kernel"].lower_counts, penalties
        )
        sp_kernel_upper = equation3_binned_slack_penalty(
            bins["kernel"].upper_counts, penalties
        )
        sp_memory_lower = equation3_binned_slack_penalty(
            bins["memory"].lower_counts, penalties
        )
        sp_memory_upper = equation3_binned_slack_penalty(
            bins["memory"].upper_counts, penalties
        )

        frac_kernel = profile.trace.kernels().runtime_fraction(profile.runtime_s)
        frac_memory = profile.trace.memcpys().runtime_fraction(profile.runtime_s)
        # Guard against overlap pushing the sum past 1 (both fractions
        # are unions individually but can overlap each other).
        total_frac = frac_kernel + frac_memory
        if total_frac > 1.0:
            frac_kernel /= total_frac
            frac_memory /= total_frac

        lower = equation2_total_slack_penalty(
            frac_kernel, sp_kernel_lower, frac_memory, sp_memory_lower
        )
        upper = equation2_total_slack_penalty(
            frac_kernel, sp_kernel_upper, frac_memory, sp_memory_upper
        )
        return SlackPrediction(
            app=profile.name,
            slack_s=slack_s,
            parallelism=par,
            lower=lower,
            upper=upper,
            sp_kernel_lower=sp_kernel_lower,
            sp_kernel_upper=sp_kernel_upper,
            sp_memory_lower=sp_memory_lower,
            sp_memory_upper=sp_memory_upper,
            runtime_fraction_kernel=frac_kernel,
            runtime_fraction_memory=frac_memory,
        )

    def predict_sweep(
        self,
        profile: AppProfile,
        slack_values_s: Sequence[float],
        parallelism: Optional[int] = None,
    ) -> Dict[float, SlackPrediction]:
        """Predictions at several slack values (Table IV rows).

        Vectorized over the slack grid: the profile is binned **once**
        and Equation 3 is evaluated as a count-weighted sum of
        per-size penalty rows across all slack values simultaneously.
        The accumulation walks bins in the same (ascending-size,
        zero-skipping) order as :func:`equation3_binned_slack_penalty`,
        so every prediction is bit-identical to a standalone
        :meth:`predict` call at that slack (see
        :func:`repro.model.reference.predict_sweep_reference`).
        """
        slacks = list(slack_values_s)
        for s in slacks:
            if s < 0:
                raise ValueError("slack_s must be non-negative")
        if not slacks:
            return {}
        par = (
            parallelism if parallelism is not None else profile.queue_parallelism
        )
        bins = self.bin_profile(profile)

        # Penalty matrix: one row per grid size, one column per slack.
        pen_rows = {
            n: np.asarray(
                [self.surface.penalty(n, s, threads=par) for s in slacks],
                dtype=float,
            )
            for n in self.surface.matrix_sizes()
        }
        sp = {
            (category, bound): _equation3_rows(
                getattr(bins[category], f"{bound}_counts"),
                pen_rows,
                len(slacks),
            )
            for category in ("kernel", "memory")
            for bound in ("lower", "upper")
        }

        frac_kernel = profile.trace.kernels().runtime_fraction(profile.runtime_s)
        frac_memory = profile.trace.memcpys().runtime_fraction(profile.runtime_s)
        total_frac = frac_kernel + frac_memory
        if total_frac > 1.0:
            frac_kernel /= total_frac
            frac_memory /= total_frac

        out: Dict[float, SlackPrediction] = {}
        for i, s in enumerate(slacks):
            sp_kernel_lower = float(sp[("kernel", "lower")][i])
            sp_kernel_upper = float(sp[("kernel", "upper")][i])
            sp_memory_lower = float(sp[("memory", "lower")][i])
            sp_memory_upper = float(sp[("memory", "upper")][i])
            out[s] = SlackPrediction(
                app=profile.name,
                slack_s=s,
                parallelism=par,
                lower=equation2_total_slack_penalty(
                    frac_kernel, sp_kernel_lower, frac_memory, sp_memory_lower
                ),
                upper=equation2_total_slack_penalty(
                    frac_kernel, sp_kernel_upper, frac_memory, sp_memory_upper
                ),
                sp_kernel_lower=sp_kernel_lower,
                sp_kernel_upper=sp_kernel_upper,
                sp_memory_lower=sp_memory_lower,
                sp_memory_upper=sp_memory_upper,
                runtime_fraction_kernel=frac_kernel,
                runtime_fraction_memory=frac_memory,
            )
        return out


def _equation3_rows(
    element_counts: Mapping[int, float],
    penalty_rows: Mapping[int, np.ndarray],
    n_slacks: int,
) -> np.ndarray:
    """Equation 3 across a whole slack grid at once.

    Accumulates ``count * penalty_row`` in the mapping's iteration
    order, skipping zero counts — elementwise the exact operation
    sequence :func:`equation3_binned_slack_penalty` performs per
    slack, so each column matches the scalar result bit for bit.
    """
    total = float(sum(element_counts.values()))
    if total <= 0:
        raise ValueError("element_counts is empty")
    acc = np.zeros(n_slacks)
    for size, count in element_counts.items():
        if count < 0:
            raise ValueError(f"negative count for size {size}")
        if count == 0:
            continue
        if size not in penalty_rows:
            raise KeyError(f"no penalty available for matrix size {size}")
        acc = acc + penalty_rows[size] * count
    return acc / total
