"""Trace event records — the simulator's NSight-Systems analogue.

The paper extracts two things from NSys traces: kernel durations and
memcpy sizes (plus their timestamps, to infer queue parallelism).
These records carry exactly those fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["EventKind", "CopyKind", "TraceEvent"]


class EventKind(str, Enum):
    """Categories of traced activity."""

    KERNEL = "kernel"
    MEMCPY = "memcpy"
    API = "api"
    SYNC = "sync"
    SLACK = "slack"


class CopyKind(str, Enum):
    """Direction of a memcpy (matches CUDA's naming)."""

    H2D = "HtoD"
    D2H = "DtoH"
    D2D = "DtoD"


@dataclass(frozen=True)
class TraceEvent:
    """One traced activity interval.

    Attributes
    ----------
    kind:
        What happened (kernel execution, memcpy, host API call...).
    name:
        Kernel or API symbol name, e.g. ``sgemm_128x128`` or
        ``cudaMemcpyAsync``.
    start / end:
        Interval bounds in simulated seconds.
    stream:
        Device stream the activity ran on (None for host-side events).
    nbytes:
        Payload size for memcpys.
    copy_kind:
        Direction for memcpys.
    correlation_id:
        Joins the host API event to the device-side activity it
        enqueued (same field NSys exposes).
    thread:
        Host thread (proxy OpenMP thread / MPI rank) that issued it.
    meta:
        Free-form extras (e.g. matrix size for proxy kernels).
    """

    kind: EventKind
    name: str
    start: float
    end: float
    stream: Optional[int] = None
    nbytes: int = 0
    copy_kind: Optional[CopyKind] = None
    correlation_id: int = 0
    thread: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"event {self.name!r} ends ({self.end}) before it starts "
                f"({self.start})"
            )
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.kind is EventKind.MEMCPY and self.copy_kind is None:
            raise ValueError("memcpy events need a copy_kind")

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start

    def overlaps(self, other: "TraceEvent") -> bool:
        """Whether two intervals overlap in time (open intervals)."""
        return self.start < other.end and other.start < self.end

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON export."""
        return {
            "kind": self.kind.value,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "stream": self.stream,
            "nbytes": self.nbytes,
            "copy_kind": self.copy_kind.value if self.copy_kind else None,
            "correlation_id": self.correlation_id,
            "thread": self.thread,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=EventKind(data["kind"]),
            name=data["name"],
            start=float(data["start"]),
            end=float(data["end"]),
            stream=data.get("stream"),
            nbytes=int(data.get("nbytes", 0)),
            copy_kind=CopyKind(data["copy_kind"]) if data.get("copy_kind") else None,
            correlation_id=int(data.get("correlation_id", 0)),
            thread=int(data.get("thread", 0)),
            meta=dict(data.get("meta", {})),
        )
