"""Placement-to-slack mapping: where a composition's GPUs physically
live determines the slack its job experiences.

Joins the :mod:`repro.cdi` composition layer to the
:mod:`repro.network` fabric: each (host rack, chassis rack) pairing
resolves to a path and its slack, so a scheduled job can be handed the
exact :class:`SlackModel` its CUDA calls will see — closing the loop
back to the proxy/prediction machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..network import Fabric, PathInfo, SlackModel
from .resources import Composition

__all__ = ["PlacementResolver", "CompositionSlack"]


@dataclass(frozen=True)
class CompositionSlack:
    """The slack characteristics of one placed composition."""

    composition_id: int
    paths: Dict[str, PathInfo]  # chassis_id -> path from the host
    worst_slack_s: float
    best_slack_s: float

    def worst_case_model(self) -> SlackModel:
        """A slack model at the composition's worst path (pessimistic)."""
        return SlackModel(self.worst_slack_s)


class PlacementResolver:
    """Resolves compositions onto a fabric to obtain slack models."""

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def resolve(
        self,
        composition: Composition,
        host: str,
        chassis_racks: Dict[str, int],
    ) -> CompositionSlack:
        """Compute per-chassis paths for a composition from ``host``.

        ``chassis_racks`` maps each chassis id used by the composition
        to the rack its fabric node lives in (``chassis:<rack>``).
        """
        if not composition.gpus:
            raise ValueError("composition has no GPUs to place")
        paths: Dict[str, PathInfo] = {}
        for chassis_id in composition.gpus:
            if chassis_id not in chassis_racks:
                raise KeyError(f"no rack known for chassis {chassis_id!r}")
            rack = chassis_racks[chassis_id]
            paths[chassis_id] = self.fabric.path(host, f"chassis:{rack}")
        slacks = [p.slack_s for p in paths.values()]
        return CompositionSlack(
            composition_id=composition.composition_id,
            paths=paths,
            worst_slack_s=max(slacks),
            best_slack_s=min(slacks),
        )
