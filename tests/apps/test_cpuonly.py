"""Tests for the CPU-only application category."""

import pytest

from repro.apps import CpuOnlyApp, trapped_gpu_analysis


class TestCpuOnlyApp:
    def test_strong_scaling_shape(self):
        app = CpuOnlyApp(serial_s=10, parallel_s=1000, halo_per_rank_s=0.4)
        t1 = app.runtime(1)
        t8 = app.runtime(8)
        assert t8 < t1
        # Amdahl floor: never below the serial fraction.
        assert app.runtime(10_000) > app.serial_s

    def test_halo_penalizes_over_decomposition(self):
        app = CpuOnlyApp(serial_s=1, parallel_s=10, halo_per_rank_s=5.0)
        assert app.runtime(16) > app.runtime(2)

    def test_best_core_count(self):
        app = CpuOnlyApp(serial_s=10, parallel_s=1000, halo_per_rank_s=0.4)
        best = app.best_core_count()
        assert app.runtime(best) <= min(
            app.runtime(c) for c in (1, 2, 4, 8, 16, 24, 48)
        )

    def test_request_has_zero_gpus(self):
        req = CpuOnlyApp().request()
        assert req.gpus == 0
        assert req.cores > 0
        assert CpuOnlyApp().request(cores=12).cores == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuOnlyApp(serial_s=-1)
        with pytest.raises(ValueError):
            CpuOnlyApp().runtime(0)


class TestTrappedGpuAnalysis:
    def test_traditional_traps_gpus_cdi_does_not(self):
        trad, cdi = trapped_gpu_analysis(cpu_jobs=8)
        # 8 whole-node CPU jobs trap 8 x 4 GPUs.
        assert trad.trapped_gpus == 32
        assert cdi.trapped_gpus == 0
        assert len(cdi.rejected) == 0

    def test_trapping_scales_with_job_count(self):
        trad4, _ = trapped_gpu_analysis(cpu_jobs=4)
        trad8, _ = trapped_gpu_analysis(cpu_jobs=8)
        assert trad8.trapped_gpus == 2 * trad4.trapped_gpus

    def test_validation(self):
        with pytest.raises(ValueError):
            trapped_gpu_analysis(cpu_jobs=0)
