#!/usr/bin/env python
"""Fleet-level throughput study: does CDI actually move the needle?

Simulates a week-scale stream of mixed jobs (CPU-heavy, GPU-heavy,
CPU-only — the paper's three archetypes) on the same physical
inventory scheduled two ways, and sweeps the GPU-job share to find
where composability pays the most.

Runs on the vectorized fleet engine (:mod:`repro.cdi.fleet`). The
first section proves per-job *bit*-parity against the scalar
generator DES before trusting any number it prints; the last section
then goes where the generator DES cannot — a 100k-job multi-tenant
stream simulated in well under a second.

Run:  python examples/fleet_throughput.py
"""

import time

import numpy as np

from repro.cdi import (
    ClusterSpec,
    FleetConfig,
    FleetJobs,
    SimJob,
    TenantSpec,
    assert_fleet_parity,
    generate_fleet_jobs,
    run_fleet,
    synthetic_job_mix,
)

CLUSTER = ClusterSpec(nodes=16, cores_per_node=48, gpus_per_node=4)


def show(label: str, result) -> None:
    print(f"  {label:12s} makespan {result.makespan_s / 3600:6.1f} h | "
          f"mean wait {result.mean_wait_s / 60:7.1f} min | "
          f"GPU util {result.gpu_utilization:5.1%} | "
          f"trapped {result.trapped_gpu_hours:6.1f} GPU-h")


def main() -> None:
    rng = np.random.default_rng(7)
    jobs = FleetJobs.from_sim_jobs(synthetic_job_mix(120, rng, cluster=CLUSTER))
    print(f"=== 120 mixed jobs on {CLUSTER.nodes} nodes "
          f"({CLUSTER.total_cores} cores, {CLUSTER.total_gpus} GPUs) ===")
    # Parity first: both modes bit-identical to the generator DES.
    trad, _ = assert_fleet_parity(jobs, CLUSTER, "traditional")
    cdi, _ = assert_fleet_parity(jobs, CLUSTER, "cdi")
    print("  [per-job parity vs the scalar reference DES: OK]")
    show("traditional", trad)
    show("CDI", cdi)
    print(f"  -> CDI: {trad.makespan_s / cdi.makespan_s:.2f}x faster "
          f"time-to-solution, {trad.mean_wait_s / cdi.mean_wait_s:.1f}x "
          f"shorter queues\n")

    print("=== where does composability pay most? "
          "(CPU-only share of the stream) ===")
    for cpu_share in (0.0, 0.25, 0.5, 0.75):
        rng = np.random.default_rng(11)
        sim_jobs = []
        t = 0.0
        for i in range(100):
            t += float(rng.exponential(600.0))
            if rng.random() < cpu_share:
                sim_jobs.append(SimJob(f"cpu-{i}", t, 3600.0, cores=48, gpus=0))
            else:
                sim_jobs.append(SimJob(f"gpu-{i}", t, 7200.0, cores=8, gpus=8))
        stream = FleetJobs.from_sim_jobs(sim_jobs)
        trad = run_fleet(stream, CLUSTER, "traditional")
        cdi = run_fleet(stream, CLUSTER, "cdi")
        print(f"  {cpu_share:4.0%} CPU-only: traditional traps "
              f"{trad.trapped_gpu_hours:7.1f} GPU-h, CDI speedup "
              f"{trad.makespan_s / cdi.makespan_s:.2f}x")

    print("\n=== fleet scale: months of sustained multi-tenant load ===")
    fleet_cluster = ClusterSpec(nodes=64, cores_per_node=48, gpus_per_node=4)
    config = FleetConfig(
        cluster=fleet_cluster,
        tenants=(
            TenantSpec(name="batch", rate_per_s=1 / 300.0),
            TenantSpec(name="interactive", rate_per_s=1 / 750.0,
                       cpu_heavy_share=0.2, gpu_heavy_share=0.5),
        ),
        horizon_s=250 * 24 * 3600.0,
        seed=2024,
        max_jobs=100_000,
    )
    stream = generate_fleet_jobs(config)
    t0 = time.perf_counter()
    result = run_fleet(stream, fleet_cluster, "cdi")
    wall = time.perf_counter() - t0
    print(f"  {len(stream)} jobs simulated in {wall:.2f}s "
          f"({len(stream) / wall:,.0f} jobs/s)")
    for name, ts in result.tenant_stats().items():
        print(f"  {name:12s} {ts.jobs:6d} jobs | wait p50 "
              f"{ts.wait_p50_s / 60:7.1f} min | p99 "
              f"{ts.wait_p99_s / 3600:6.1f} h | trapped "
              f"{ts.trapped_core_hours:8.1f} core-h")

    print("\nthe more heterogeneous the mix, the more a fixed node shape "
          "strands — exactly the utilization argument that motivates "
          "row-scale CDI once slack is shown to be harmless.")


if __name__ == "__main__":
    main()
