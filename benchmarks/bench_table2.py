"""Benchmark: regenerate Table II (proxy calibration)."""

from repro.experiments import run_experiment


def test_bench_table2(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("table2", ctx), rounds=1, iterations=1
    )
    print_result(result)
    table = result.tables[0]
    assert table.column("Iterations (N)")[0] == 1000
    assert table.column("Matrix [MiB]") == [1, 16, 256, 4096]
