"""A discrete-event simulated CUDA runtime.

The substitution for the paper's real A100 node: a CUDA-like host API
(:class:`CudaRuntime`) over three serial device engines (compute + two
DMA directions), device memory, streams and events — with slack
injection at the API boundary and a starvation cost model that charges
for idle gaps the way a real GPU's clock ramp and queue re-priming do.
"""

from .cuda_event import CudaEvent, elapsed_time
from .graphs import CudaGraph, GraphNode
from .engines import (
    ComputeEngine,
    OccupancyComputeEngine,
    CopyEngine,
    DeviceActivity,
    Engine,
    ExecutionReceipt,
)
from .interception import SlackInjector
from .kernels import (
    KernelSpec,
    matmul_sm_fraction,
    MATMUL_EFF_HALF_N,
    matmul_efficiency,
    matmul_kernel,
)
from .multigpu import (
    CHASSIS_INTERNAL,
    CROSS_CHASSIS,
    GPUGroup,
    NVLINK3,
    PeerLinkSpec,
    ring_allreduce_time,
)
from .preload import PreloadShim
from .remoting import RemotingSpec, make_remoting_runtime
from .runtime import CudaRuntime
from .stream import CopyOp, KernelOp, MarkerOp, Stream

__all__ = [
    "CudaRuntime",
    "Stream",
    "KernelOp",
    "CopyOp",
    "MarkerOp",
    "CudaEvent",
    "elapsed_time",
    "KernelSpec",
    "matmul_kernel",
    "matmul_efficiency",
    "matmul_sm_fraction",
    "MATMUL_EFF_HALF_N",
    "Engine",
    "ComputeEngine",
    "OccupancyComputeEngine",
    "CopyEngine",
    "DeviceActivity",
    "ExecutionReceipt",
    "SlackInjector",
    "GPUGroup",
    "PeerLinkSpec",
    "NVLINK3",
    "CHASSIS_INTERNAL",
    "CROSS_CHASSIS",
    "ring_allreduce_time",
    "PreloadShim",
    "RemotingSpec",
    "make_remoting_runtime",
    "CudaGraph",
    "GraphNode",
]
