"""Slack sweeps over the proxy's parameter grid (paper Section IV-B).

Runs the proxy at every (matrix size, thread count, slack) point of
the paper's grid — matrix sizes 2^9..2^15 in steps of 2^2, slack
1 us..10 ms in decades, threads {1, 2, 4, 8} — applies the Equation 1
correction, and normalizes against the zero-slack baseline of the same
configuration. The result is the slack response surface Figures 3(a-c)
plot and the prediction model (Eq 2-3) consumes.

Every grid point is an independent DES run, so the sweep fans out over
:class:`repro.parallel.SweepExecutor` — ``workers=1`` (the default)
reproduces the historical strictly-sequential behavior in-process,
``workers=N`` uses a process pool, and both orderings are guaranteed
identical because the executor returns measurements in grid order.
Attaching a :class:`repro.parallel.PointCache` makes re-sweeps and
grid extensions reuse every previously measured point.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..obs import RunReport, get_registry
from .calibration import calibrate_iterations, time_single_kernel
from .matmul import ProxyConfig, run_proxy  # noqa: F401
from .options import (
    ShardingUnsupportedError,
    SweepOptions,
    UNSET,
    resolve_options,
)
from .quantize import slack_bucket, slack_tolerance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan
    from ..parallel import PointCache, SweepExecutor
    from ..parallel.point import PointMeasurement, PointTask

__all__ = [
    "PAPER_MATRIX_SIZES",
    "PAPER_SLACK_VALUES_S",
    "PAPER_THREAD_COUNTS",
    "SweepPoint",
    "SweepResult",
    "SweepTiming",
    "assemble_sweep_result",
    "grid_series",
    "plan_grid_tasks",
    "run_slack_sweep",
]

#: Names this module used to re-export for import convenience. They now
#: live at their canonical homes; importing them from here still works
#: but warns (see the deprecation policy in docs/observability.md).
_DEPRECATED_REEXPORTS = {
    "OutOfMemoryError": "repro.hw",
    "SlackModel": "repro.network",
}


def __getattr__(name: str) -> Any:
    """Deprecation shims for the legacy ``repro.proxy.sweep`` re-exports."""
    canonical = _DEPRECATED_REEXPORTS.get(name)
    if canonical is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name} from repro.proxy.sweep is deprecated; "
        f"use 'from {canonical} import {name}' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(canonical), name)

#: The paper's matrix-size grid: 2^9 to 2^15 in multiples of 2^2.
PAPER_MATRIX_SIZES: Tuple[int, ...] = (2**9, 2**11, 2**13, 2**15)

#: The paper's slack grid: 1 us to 10 ms in decades.
PAPER_SLACK_VALUES_S: Tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)

#: OpenMP thread counts tested (4 collected but unplotted in the paper).
PAPER_THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


#: Rounded-slack secondary-index key — the shared quantization rule of
#: :mod:`repro.proxy.quantize` (the surface and the serving surrogate
#: index by the exact same buckets).
_slack_bucket = slack_bucket


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of the slack response surface."""

    matrix_size: int
    threads: int
    slack_s: float
    loop_runtime_s: float
    corrected_runtime_s: float
    baseline_runtime_s: float
    iterations: int
    kernel_time_s: float

    @property
    def normalized_runtime(self) -> float:
        """Equation-1-corrected runtime over the zero-slack baseline.

        1.0 means slack costs nothing beyond the admissible network
        delay; the paper's Figure 3 y-axis.
        """
        return self.corrected_runtime_s / self.baseline_runtime_s

    @property
    def penalty(self) -> float:
        """Fractional starvation penalty (normalized runtime - 1)."""
        return self.normalized_runtime - 1.0


@dataclass(frozen=True)
class SweepTiming:
    """Wall-clock instrumentation of one sweep execution."""

    #: End-to-end wall time of the sweep (includes cache resolution).
    wall_s: float
    #: Grid points resolved in total (baselines included).
    grid_points: int
    #: Points actually measured this run (cache misses).
    measured: int
    #: Points served from the per-point cache.
    cached: int
    #: Worker processes used ("inline" mode always reports 1).
    workers: int
    #: "process" (pool) or "inline" (deterministic in-process loop).
    mode: str
    #: Summed per-point measurement time (the sequential-equivalent cost).
    point_seconds: float

    @property
    def points_per_sec(self) -> float:
        """Grid points resolved per wall second."""
        return self.grid_points / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def speedup_vs_sequential(self) -> Optional[float]:
        """Summed per-point time over wall time, or ``None`` when
        the run *was* sequential.

        With one worker the "parallel" leg is the inline path measured
        against itself — the ratio would read as a misleading ~0.95×
        "slowdown" that is really just dispatch overhead, so single
        worker runs report ``None`` (JSON ``null``) instead.
        """
        if self.workers <= 1:
            return None
        return self.point_seconds / self.wall_s if self.wall_s > 0 else 0.0

    def to_doc(self) -> Dict[str, Optional[float]]:
        """Plain-dict form for perf artifacts (BENCH_sweep.json)."""
        return {
            "wall_s": self.wall_s,
            "grid_points": self.grid_points,
            "measured": self.measured,
            "cached": self.cached,
            "workers": self.workers,
            "mode": self.mode,
            "point_seconds": self.point_seconds,
            "points_per_sec": self.points_per_sec,
            "speedup_vs_sequential": self.speedup_vs_sequential,
        }


@dataclass
class SweepResult:
    """All points of a sweep, indexable by configuration."""

    points: List[SweepPoint] = field(default_factory=list)
    skipped: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Execution instrumentation (None for hand-assembled results).
    timing: Optional[SweepTiming] = field(default=None, compare=False)
    #: Telemetry snapshot of the sweep (None unless metrics were
    #: enabled via repro.obs when the sweep ran).
    report: Optional[RunReport] = field(default=None, compare=False)
    #: Shard-merge roll-up (a :class:`repro.parallel.ShardMergeStats`;
    #: None unless this result came out of
    #: :func:`repro.parallel.merge_shards`). Excluded from equality:
    #: a merged result *is* the dense result, telemetry aside.
    merge: Optional[Any] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # O(1) exact-lookup index plus a rounded-slack secondary index
        # for near-miss lookups; both kept in sync by add().
        self._index: Dict[Tuple[int, int, float], SweepPoint] = {}
        self._near: Dict[Tuple[int, int, str], SweepPoint] = {}
        for p in self.points:
            self._index_point(p)

    def _index_point(self, point: SweepPoint) -> None:
        self._index[(point.matrix_size, point.threads, point.slack_s)] = point
        self._near[
            (point.matrix_size, point.threads, _slack_bucket(point.slack_s))
        ] = point

    def add(self, point: SweepPoint) -> None:
        """Record one measured point."""
        self.points.append(point)
        self._index_point(point)

    def get(self, matrix_size: int, threads: int, slack_s: float) -> SweepPoint:
        """Exact lookup of one grid point (O(1) on the grid key).

        Slack values float-close to a stored value without being
        bit-identical resolve through a rounded-slack secondary index:
        any point within the tolerance ``1e-12 + 1e-9 * slack_s``
        shares a 7-significant-digit bucket with ``slack_s`` or with
        one of ``slack_s +/- tolerance`` (rounding is monotone and the
        bucket width dwarfs the tolerance, so the three probes cover
        every boundary crossing) — near-miss lookups stay O(1) instead
        of scanning every point.
        """
        point = self._index.get((matrix_size, threads, slack_s))
        if point is not None:
            return point
        tol = slack_tolerance(slack_s)
        for probe in (slack_s, slack_s - tol, slack_s + tol):
            p = self._near.get((matrix_size, threads, _slack_bucket(probe)))
            if p is not None and abs(p.slack_s - slack_s) <= tol:
                return p
        raise KeyError((matrix_size, threads, slack_s))

    def series(self, matrix_size: int, threads: int) -> List[SweepPoint]:
        """All slack points of one (matrix size, threads) series."""
        pts = [
            p
            for p in self.points
            if p.matrix_size == matrix_size and p.threads == threads
        ]
        return sorted(pts, key=lambda p: p.slack_s)

    def matrix_sizes(self) -> List[int]:
        """Distinct matrix sizes measured."""
        return sorted({p.matrix_size for p in self.points})

    def thread_counts(self) -> List[int]:
        """Distinct thread counts measured."""
        return sorted({p.threads for p in self.points})


def grid_series(
    matrix_sizes: Sequence[int], threads: Sequence[int]
) -> List[Tuple[int, int]]:
    """``(matrix_size, threads)`` series keys in canonical grid order.

    Threads-major, then matrix size — the historical sequential loop
    nesting every sweep (dense, adaptive, sharded) must reproduce.
    """
    return [(n, t) for t in threads for n in matrix_sizes]


def plan_grid_tasks(
    matrix_sizes: Sequence[int],
    slack_values_s: Sequence[float],
    threads: Sequence[int],
    iterations: Optional[int] = None,
    target_compute_s: float = 30.0,
    *,
    fast_forward: Optional[bool] = None,
    faults: Optional["FaultPlan"] = None,
) -> List["PointTask"]:
    """The canonical task list of one sweep grid.

    Calibration is hoisted out of the per-point workers: the
    single-kernel duration and the iteration count are computed once
    per matrix size here, and every point of that size (all thread
    counts, all slacks) shares them via its task. The resulting
    iteration count is identical to what per-point calibration would
    choose (same inputs, same function), and — because the whole
    derivation is a deterministic mini-simulation — identical on every
    host, which is what lets shard workers plan the same task list
    independently (:mod:`repro.parallel.shards`).

    Task order is the grid contract: per :func:`grid_series` entry,
    the zero-slack baseline followed by the slack values in the order
    given.
    """
    from ..parallel import PointTask

    calibration: Dict[int, Tuple[float, int]] = {}
    for n in matrix_sizes:
        if n in calibration:
            continue
        probe = ProxyConfig(matrix_size=n, target_compute_s=target_compute_s)
        kt = time_single_kernel(n, probe.gpu, probe.pcie, probe.dtype_bytes)
        iters = iterations or calibrate_iterations(
            kt, target_s=target_compute_s
        )
        calibration[n] = (kt, iters)

    tasks: List[PointTask] = []
    for n, t in grid_series(matrix_sizes, threads):
        kt, iters = calibration[n]
        config = ProxyConfig(
            matrix_size=n,
            threads=t,
            iterations=iters,
            target_compute_s=target_compute_s,
        )
        tasks.append(
            PointTask(
                config, 0.0, kernel_time_s=kt,
                fast_forward=fast_forward, faults=faults,
            )
        )
        tasks.extend(
            PointTask(
                config, s, kernel_time_s=kt,
                fast_forward=fast_forward, faults=faults,
            )
            for s in slack_values_s
        )
    return tasks


def assemble_sweep_result(
    series: Sequence[Tuple[int, int]],
    slack_values_s: Sequence[float],
    measurements: Sequence["PointMeasurement"],
) -> SweepResult:
    """Reduce ordered point measurements to a :class:`SweepResult`.

    ``measurements`` must follow the task order of
    :func:`plan_grid_tasks` (per series: baseline, then each slack).
    This is the one assembly path shared by the dense sweep and the
    shard merge (:func:`repro.parallel.merge_shards`), which is what
    makes a merged result byte-identical to the single-host run: both
    consume identical measurements in identical order through
    identical code.
    """
    result = SweepResult()
    i = 0
    for matrix_size, threads in series:
        baseline = measurements[i]
        i += 1
        if not baseline.ok:
            # The baseline OOMed: the whole series is unmeasurable (its
            # slack points failed identically) — record the one skip the
            # sequential sweep records and move past the series.
            result.skipped.append((matrix_size, threads, baseline.error))
            i += len(slack_values_s)
            continue
        for slack_s in slack_values_s:
            m = measurements[i]
            i += 1
            if not m.ok:
                # Under a fault plan a single point can fail on its own
                # (fabric timeout) even though its baseline survived;
                # record the skip instead of fabricating a zero point.
                result.skipped.append((matrix_size, threads, m.error))
                continue
            result.add(
                SweepPoint(
                    matrix_size=matrix_size,
                    threads=threads,
                    slack_s=slack_s,
                    loop_runtime_s=m.loop_runtime_s,
                    corrected_runtime_s=m.corrected_runtime_s,
                    baseline_runtime_s=baseline.loop_runtime_s,
                    iterations=m.iterations,
                    kernel_time_s=m.kernel_time_s,
                )
            )
    return result


#: The historical positional parameter order, kept working through a
#: deprecation shim (see :func:`run_slack_sweep`).
_LEGACY_POSITIONAL = (
    "matrix_sizes",
    "slack_values_s",
    "threads",
    "iterations",
    "target_compute_s",
)


def run_slack_sweep(
    *legacy_args: Any,
    matrix_sizes: Any = UNSET,
    slack_values_s: Any = UNSET,
    threads: Any = UNSET,
    iterations: Any = UNSET,
    target_compute_s: Any = UNSET,
    options: Optional[SweepOptions] = None,
    workers: Any = UNSET,
    cache: Any = UNSET,
    executor: Optional["SweepExecutor"] = None,
    fast_forward: Any = UNSET,
    faults: Any = UNSET,
    adaptive: Any = UNSET,
    tol: Any = UNSET,
) -> SweepResult:
    """Measure the slack response surface over a parameter grid.

    All parameters are keyword-only. The grid keywords default to the
    paper's values (``matrix_sizes=PAPER_MATRIX_SIZES``,
    ``slack_values_s=PAPER_SLACK_VALUES_S``, ``threads=(1,)``,
    ``iterations=None`` = auto-calibrate, ``target_compute_s=30.0``).
    The execution knobs can be passed individually or bundled into one
    :class:`~repro.proxy.SweepOptions` via ``options=``; explicit
    keywords always override the bundle. The historical positional
    form (grid parameters by position) still works but emits a
    :class:`DeprecationWarning`.

    Configurations whose matrices exceed device memory are skipped and
    recorded in ``SweepResult.skipped`` (the paper's 2^15 exclusion
    above 2 threads). ``iterations`` overrides auto-calibration (keeps
    tests fast); ``target_compute_s`` shortens the calibration budget.

    The execution knobs are keyword-only (the stable ``repro.api``
    contract): ``workers`` > 1 fans the grid out over a process pool
    and ``None`` means ``os.cpu_count()``; results are returned in the
    same deterministic grid order either way. ``cache``
    attaches a per-point result store so previously measured points are
    never re-run; ``executor`` substitutes a fully custom executor
    (its ``workers``/``cache`` then take precedence). ``fast_forward``
    passes the steady-state fast-forward knob through to every point's
    :func:`repro.proxy.run_proxy` (``None`` = the proxy default, on;
    results are bit-identical either way).

    Calibration is hoisted out of the per-point workers: the
    single-kernel duration and the iteration count are computed once
    per matrix size here, and every point of that size (all thread
    counts, all slacks) shares them via its task.

    When metrics are enabled (:func:`repro.obs.enable_metrics` or the
    CLI's ``--metrics-out``), the sweep publishes DES/GPU/fabric/cache
    telemetry into the active registry and attaches a
    :class:`repro.obs.RunReport` snapshot as ``SweepResult.report``.

    ``faults`` attaches a :class:`~repro.faults.FaultPlan` to every
    point of the grid (baselines included — the fabric is degraded,
    period), producing a degraded-mode response surface. The plan
    rides inside each :class:`~repro.parallel.PointTask`, is part of
    the point-cache key, and disables per-point fast-forward; an empty
    plan is normalized to ``None`` and reproduces the healthy sweep
    bit-identically. For surfaces across *fault intensities* see
    :func:`repro.faults.run_degraded_sweep`.

    ``adaptive=True`` measures only a seed of each series plus
    error-driven refinements and *predicts* the rest
    (:func:`repro.model.adaptive.adaptive_slack_sweep`): the returned
    result still covers the full grid, with unmeasured points
    synthesized by the response surface's own log-linear interpolation,
    each certified to within ``tol`` (default
    :data:`~repro.model.adaptive.DEFAULT_TOL`, 0.1 pp of penalty).
    Measured points are bit-identical to the dense sweep's and share
    its per-point cache. Call ``adaptive_slack_sweep`` directly to
    also get the measured-only view and per-point error bounds.
    """
    from ..parallel import SweepExecutor

    if legacy_args:
        if len(legacy_args) > len(_LEGACY_POSITIONAL):
            raise TypeError(
                f"run_slack_sweep() takes at most "
                f"{len(_LEGACY_POSITIONAL)} positional arguments "
                f"({len(legacy_args)} given); the execution knobs are "
                f"keyword-only"
            )
        warnings.warn(
            "positional arguments to run_slack_sweep are deprecated; "
            "pass the grid as keywords (matrix_sizes=, slack_values_s=, "
            "threads=, iterations=, target_compute_s=)",
            DeprecationWarning,
            stacklevel=2,
        )
        provided = dict(zip(_LEGACY_POSITIONAL, legacy_args))
        existing = {
            "matrix_sizes": matrix_sizes,
            "slack_values_s": slack_values_s,
            "threads": threads,
            "iterations": iterations,
            "target_compute_s": target_compute_s,
        }
        for name, value in provided.items():
            if existing[name] is not UNSET:
                raise TypeError(
                    f"run_slack_sweep() got multiple values for "
                    f"argument {name!r}"
                )
        matrix_sizes = provided.get("matrix_sizes", matrix_sizes)
        slack_values_s = provided.get("slack_values_s", slack_values_s)
        threads = provided.get("threads", threads)
        iterations = provided.get("iterations", iterations)
        target_compute_s = provided.get("target_compute_s", target_compute_s)

    matrix_sizes = (
        PAPER_MATRIX_SIZES if matrix_sizes is UNSET else matrix_sizes
    )
    slack_values_s = (
        PAPER_SLACK_VALUES_S if slack_values_s is UNSET else slack_values_s
    )
    threads = (1,) if threads is UNSET else threads
    iterations = None if iterations is UNSET else iterations
    target_compute_s = 30.0 if target_compute_s is UNSET else target_compute_s

    opts = resolve_options(
        options,
        {
            "workers": workers,
            "cache": cache,
            "fast_forward": fast_forward,
            "faults": faults,
            "adaptive": adaptive,
            "tol": tol,
        },
    )

    if opts.adaptive:
        # Lazy import: repro.model imports repro.proxy at module level.
        from ..model.adaptive import DEFAULT_TOL, adaptive_slack_sweep

        return adaptive_slack_sweep(
            matrix_sizes,
            slack_values_s,
            threads,
            iterations,
            target_compute_s,
            tol=DEFAULT_TOL if opts.tol is None else opts.tol,
            options=opts.replace(adaptive=False, tol=None),
            executor=executor,
        ).dense

    if opts.shard is not None:
        raise ShardingUnsupportedError(
            "run_slack_sweep returns a full surface and cannot execute "
            "one shard; use repro.parallel.run_sweep_shard + "
            "merge_shards (or repro.parallel.ShardCoordinator)"
        )

    fast_forward = opts.fast_forward
    faults = opts.faults
    if faults is not None and faults.is_empty:
        faults = None
    if faults is not None:
        faults.validate()

    tasks = plan_grid_tasks(
        matrix_sizes,
        slack_values_s,
        threads,
        iterations,
        target_compute_s,
        fast_forward=fast_forward,
        faults=faults,
    )

    ex = executor if executor is not None else SweepExecutor(options=opts)
    measurements = ex.run(tasks)

    result = assemble_sweep_result(
        grid_series(matrix_sizes, threads), slack_values_s, measurements
    )

    stats = ex.stats
    if stats is not None:
        result.timing = SweepTiming(
            wall_s=stats.wall_s,
            grid_points=stats.tasks,
            measured=stats.measured,
            cached=stats.cached,
            workers=stats.workers,
            mode=stats.mode,
            point_seconds=stats.point_seconds,
        )

    reg = get_registry()
    if reg.enabled:
        reg.counter("sweep.runs").inc()
        reg.counter("sweep.points").inc(len(result.points))
        reg.counter("sweep.skipped").inc(len(result.skipped))
        if result.timing is not None:
            reg.counter("sweep.wall_s").inc(result.timing.wall_s)
        result.report = RunReport.collect(
            reg,
            kind="sweep",
            meta={
                "matrix_sizes": list(matrix_sizes),
                "slack_values_s": list(slack_values_s),
                "threads": list(threads),
                "iterations": iterations,
                "faults": faults.to_doc() if faults is not None else None,
            },
        )
    return result
