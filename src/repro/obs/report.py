"""Structured run reports: one comparable telemetry artifact per run.

A :class:`RunReport` snapshots everything a :class:`~repro.obs.MetricsRegistry`
collected during a sweep, experiment batch, or benchmark run into a
stable JSON document (plus a monospace human table), so every
instrumented run leaves an artifact comparable across PRs — the same
role ``BENCH_sweep.json`` plays for wall-clock numbers, but for the
simulator's internal telemetry (where the DES time went, what the
fabric injected, how the point cache behaved).

Schema (``schema`` is bumped on incompatible changes)::

    {
      "schema": 1,
      "kind": "sweep" | "experiments" | "custom",
      "generated_at": "<ISO-8601 UTC>",
      "python": "3.11.7",
      "repro_version": "1.0.0",
      "meta": { ... caller-supplied context ... },
      "metrics": { "<section>": { "<metric>": number | histogram-doc } }
    }

Histogram docs are ``{"count", "sum", "mean", "min", "p50", "p90",
"p99", "max"}``. Sections are the publishing layers: ``des``, ``gpu``,
``fabric``, ``cache``, ``executor``, ``sweep``, ``experiments``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .metrics import MetricsRegistry

__all__ = ["RUN_REPORT_SCHEMA_VERSION", "RunReport"]

#: Bump on incompatible changes to the JSON document layout.
RUN_REPORT_SCHEMA_VERSION = 1


def _repro_version() -> str:
    # Late import: repro/__init__ imports subpackages that import obs.
    from .. import __version__

    return __version__


@dataclass
class RunReport:
    """A snapshot of collected metrics plus run provenance."""

    kind: str = "custom"
    generated_at: str = ""
    python: str = ""
    repro_version: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        registry: MetricsRegistry,
        kind: str = "custom",
        meta: Optional[Dict[str, Any]] = None,
    ) -> "RunReport":
        """Snapshot ``registry`` into a report (registry keeps counting)."""
        return cls(
            kind=kind,
            generated_at=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            python=platform.python_version(),
            repro_version=_repro_version(),
            meta=dict(meta or {}),
            metrics=registry.to_doc(),
        )

    # -- serialization ------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        """The stable JSON-ready document."""
        return {
            "schema": RUN_REPORT_SCHEMA_VERSION,
            "kind": self.kind,
            "generated_at": self.generated_at,
            "python": self.python,
            "repro_version": self.repro_version,
            "meta": self.meta,
            "metrics": self.metrics,
        }

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the report document as pretty-printed JSON."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_doc(), indent=1, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "RunReport":
        """Rebuild a report from its document form."""
        schema = doc.get("schema")
        if schema != RUN_REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunReport schema {schema!r} "
                f"(this build reads {RUN_REPORT_SCHEMA_VERSION})"
            )
        return cls(
            kind=str(doc.get("kind", "custom")),
            generated_at=str(doc.get("generated_at", "")),
            python=str(doc.get("python", "")),
            repro_version=str(doc.get("repro_version", "")),
            meta=dict(doc.get("meta", {})),
            metrics={
                section: dict(values)
                for section, values in doc.get("metrics", {}).items()
            },
        )

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "RunReport":
        """Load a report previously written with :meth:`to_json`."""
        return cls.from_doc(json.loads(Path(path).read_text()))

    # -- introspection ------------------------------------------------------
    def sections(self) -> list:
        """The metric sections present, sorted."""
        return sorted(self.metrics)

    def value(self, name: str) -> Any:
        """Look one metric up by dotted name (``section.metric``)."""
        section, _, metric = name.rpartition(".")
        try:
            return self.metrics[section][metric]
        except KeyError:
            raise KeyError(name) from None

    # -- human rendering ----------------------------------------------------
    def render(self) -> str:
        """Monospace table: one block per section, aligned columns.

        (Deliberately self-contained rather than reusing
        ``repro.experiments.report.Table`` — obs sits below the
        experiments layer in the import graph.)
        """
        lines = [
            f"RunReport kind={self.kind} "
            f"generated_at={self.generated_at or '-'} "
            f"python={self.python or '-'} "
            f"repro={self.repro_version or '-'}"
        ]
        for key, val in sorted(self.meta.items()):
            lines.append(f"meta: {key} = {val}")
        for section in self.sections():
            values = self.metrics[section]
            lines.append("")
            lines.append(f"[{section or '(root)'}]")
            width = max((len(m) for m in values), default=0)
            for metric in sorted(values):
                lines.append(
                    f"  {metric.ljust(width)}  {_fmt_value(values[metric])}"
                )
        return "\n".join(lines)


def _fmt_value(value: Any) -> str:
    """Format one metric value (number or histogram summary dict)."""
    if isinstance(value, dict):
        if value.get("count", 0) == 0:
            return "(empty histogram)"
        parts = [
            f"{k}={_fmt_number(value[k])}"
            for k in ("count", "mean", "p50", "p90", "p99", "max")
            if k in value
        ]
        return " ".join(parts)
    return _fmt_number(value)


def _fmt_number(value: Any) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    if isinstance(value, float):
        return str(int(value))
    return str(value)
