"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact and prints the same
rows/series the paper reports (run pytest with ``-s`` to see them).
The shared :class:`ExperimentContext` reuses the disk-cached proxy
surface, so the first run of the suite pays the sweep cost once.

The session also emits a machine-readable perf artifact,
``BENCH_sweep.json`` at the repo root: wall time per benchmark, the
sweep engine's grid-points/sec and worker count, and whatever extra
stats individual benchmarks record through the ``bench_extra`` fixture
(e.g. the DES kernel's events/sec). Comparing that file across PRs is
how the perf trajectory of the reproduction stays measurable.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

#: Where the perf artifact lands (repo root, next to README.md).
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: Session context, exposed for the artifact writer.
_SESSION_CTX = None

#: nodeid -> call duration of every passed benchmark this session.
_DURATIONS = {}


def pytest_addoption(parser):
    parser.addoption(
        "--full-repro",
        action="store_true",
        default=False,
        help="use the paper's full run lengths (slow) instead of quick mode",
    )
    parser.addoption(
        "--bench-workers",
        type=int,
        default=0,
        help="worker processes for the shared context's sweep "
             "(0 = all CPU cores)",
    )


def pytest_configure(config):
    config._bench_extra = {}


@pytest.fixture(scope="session")
def ctx(request):
    global _SESSION_CTX
    workers = request.config.getoption("--bench-workers") or os.cpu_count() or 1
    _SESSION_CTX = ExperimentContext(
        quick=not request.config.getoption("--full-repro"),
        workers=workers,
    )
    return _SESSION_CTX


@pytest.fixture(scope="session")
def bench_extra(request):
    """Free-form dict merged into the BENCH_sweep.json artifact."""
    return request.config._bench_extra


@pytest.fixture(scope="session")
def print_result():
    def _print(result):
        print()
        print(result.render())

    return _print


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _DURATIONS[report.nodeid] = report.duration


def pytest_sessionfinish(session, exitstatus):
    if not _DURATIONS:
        return
    ctx = _SESSION_CTX
    if ctx is None and not session.config._bench_extra:
        # Standalone benchmarks (bench_appff, …) write their own
        # artifacts; don't clobber BENCH_sweep.json with a partial doc.
        return
    doc = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers": ctx.workers if ctx is not None else None,
        "experiments": {
            _experiment_name(nodeid): round(duration, 4)
            for nodeid, duration in sorted(_DURATIONS.items())
        },
        # Never null: a structured reason is distinguishable from
        # "the writer crashed before filling the field".
        "sweep": (
            ctx.sweep_timing.to_doc()
            if ctx is not None and ctx.sweep_timing is not None
            else {"skipped": "fully-cached"}  # surface came from disk
            if ctx is not None
            else {"skipped": "no-shared-context"}
        ),
    }
    doc.update(session.config._bench_extra)
    BENCH_ARTIFACT.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _experiment_name(nodeid):
    """'benchmarks/bench_figure3.py::test_bench_figure3' -> 'figure3'."""
    test = nodeid.rsplit("::", 1)[-1]
    return test.removeprefix("test_bench_").removeprefix("test_")
