"""Benchmark: the parallel sweep execution engine itself.

Measures the same compact grid sequentially and through the process
pool, records both timings (plus the parallel/sequential ratio) into
the BENCH_sweep.json perf artifact, and asserts the engine's core
contract: parallel output is exactly equal to sequential output. The
sharded leg does the same for the multi-host scale-out path: one
dense run vs. three local shard-worker subprocesses merged back
together, with bit-parity asserted *before* any timing is recorded.

On single-core runners the pool and the shard fan-out degenerate
gracefully — every parity assertion still holds, and the perf legs
record a structured ``{"skipped": "single-cpu"}`` instead of a
meaningless (or null) speedup.
"""

import os

from repro.parallel import GridSpec, ShardCoordinator
from repro.proxy import SweepOptions, run_slack_sweep

#: Compact but non-trivial grid: 3 sizes x 2 thread counts x 3 slacks
#: (+ baselines) = 24 proxy runs per mode.
GRID = dict(
    matrix_sizes=(512, 2048, 8192),
    slack_values_s=(1e-6, 1e-4, 1e-2),
    threads=(1, 2),
    iterations=15,
)


def test_bench_sweep_engine(benchmark, bench_extra):
    sequential = run_slack_sweep(**GRID, workers=1)

    workers = os.cpu_count() or 1
    if workers == 1:
        # Single-core runner: a pool leg would only measure dispatch
        # overhead. Re-run the inline path for the parity check and
        # record a structured skip instead of null speedups (a null
        # is indistinguishable from "the leg never ran").
        parallel = benchmark.pedantic(
            lambda: run_slack_sweep(**GRID, workers=1),
            rounds=1,
            iterations=1,
        )
        assert parallel.points == sequential.points
        assert parallel.skipped == sequential.skipped
        bench_extra["sweep_engine"] = {
            "sequential": sequential.timing.to_doc(),
            "parallel": {"skipped": "single-cpu"},
            "wall_speedup": {"skipped": "single-cpu"},
        }
        return

    parallel = benchmark.pedantic(
        lambda: run_slack_sweep(**GRID, workers=workers),
        rounds=1,
        iterations=1,
    )

    # The engine's contract: fan-out must not change a single bit.
    assert parallel.points == sequential.points
    assert parallel.skipped == sequential.skipped

    wall_speedup = (
        sequential.timing.wall_s / parallel.timing.wall_s
        if parallel.timing.wall_s > 0
        else float("inf")
    )
    bench_extra["sweep_engine"] = {
        "sequential": sequential.timing.to_doc(),
        "parallel": parallel.timing.to_doc(),
        "wall_speedup": wall_speedup,
    }


#: Sharded-leg grid: a single matrix size keeps every point's cost
#: uniform, so the deterministic hash partition (which balances point
#: *counts*) also balances *work*. iterations=1075 is chosen so the
#: 24 tasks split exactly 8/8/8 across 3 shards (the partition is a
#: pure function of the task content — identical on every host) and
#: so each shard carries several seconds of real compute, amortizing
#: the ~1s subprocess startup. Fast-forward is off: the leg must
#: measure the fan-out of real DES work, not of extrapolation.
SHARD_GRID = GridSpec(
    matrix_sizes=(2048,),
    slack_values_s=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2),
    threads=(1, 2, 4, 8),
    iterations=1075,
)

#: Local shard workers in the sharded leg (the acceptance floor below
#: is stated at this count).
SHARD_WORKERS = 3


def test_bench_sharded_sweep(benchmark, bench_extra):
    opts = SweepOptions(workers=1, cache=None, fast_forward=False)
    dense = run_slack_sweep(
        matrix_sizes=SHARD_GRID.matrix_sizes,
        slack_values_s=SHARD_GRID.slack_values_s,
        threads=SHARD_GRID.threads,
        iterations=SHARD_GRID.iterations,
        options=opts,
    )

    coordinator = ShardCoordinator(SHARD_GRID, SHARD_WORKERS, options=opts)
    merged = benchmark.pedantic(coordinator.run, rounds=1, iterations=1)

    # Bit-parity FIRST: a timing number for a wrong result is worse
    # than no number. Points, skips, surface — all byte-identical.
    assert merged.points == dense.points
    assert merged.skipped == dense.skipped

    m = merged.merge
    leg = {
        "shard_workers": SHARD_WORKERS,
        "grid_points": m.grid_points,
        "dense_wall_s": dense.timing.wall_s,
        "coordinator_wall_s": m.coordinator_wall_s,
        "shard_wall_s": [s["wall_s"] for s in m.shards],
        "shard_points": [int(s["tasks"]) for s in m.shards],
        "subprocess_wall_s": [
            m.subprocess_wall_s[i] for i in sorted(m.subprocess_wall_s)
        ],
        "merge_wall_s": m.merge_wall_s,
        "merge_overhead": m.merge_overhead,
        "parity": True,
    }

    # Merge must be noise, not a tax — regardless of core count.
    assert m.merge_overhead is not None and m.merge_overhead < 0.05, (
        f"merge overhead {m.merge_overhead:.1%} exceeds the 5% budget"
    )

    cpus = os.cpu_count() or 1
    if cpus > 2:
        wall_speedup = dense.timing.wall_s / m.coordinator_wall_s
        leg["wall_speedup"] = wall_speedup
        bench_extra["sharded"] = leg
        assert wall_speedup >= 1.7, (
            f"sharded speedup {wall_speedup:.2f}x below the 1.7x floor "
            f"at {SHARD_WORKERS} shard workers on {cpus} cores"
        )
    else:
        # Too few cores to fan out: the workers serialize and the
        # "speedup" would measure nothing but subprocess startup.
        leg["wall_speedup"] = {"skipped": "single-cpu"}
        bench_extra["sharded"] = leg


#: Reduced paper grid for the fast-forward benchmark. Auto-calibrated
#: iteration counts (the paper's regime: 1000 iterations at 2^9) are
#: where fast-forward pays off — the quick 25-iteration grids above
#: deliberately keep the full simulations cheap.
FF_GRID = dict(
    matrix_sizes=(512, 8192),
    slack_values_s=(1e-5, 1e-3),
    threads=(1, 4),
    iterations=None,
)


def test_bench_fastforward(benchmark, bench_extra):
    full = run_slack_sweep(**FF_GRID, fast_forward=False)

    fast = benchmark.pedantic(
        lambda: run_slack_sweep(**FF_GRID, fast_forward=True),
        rounds=1,
        iterations=1,
    )

    # The engine's contract: every SweepPoint field bit-identical.
    assert fast.points == full.points
    assert fast.skipped == full.skipped

    speedup = (
        full.timing.wall_s / fast.timing.wall_s
        if fast.timing.wall_s > 0
        else float("inf")
    )
    bench_extra["fastforward"] = {
        "grid_points": fast.timing.grid_points,
        "full_wall_s": full.timing.wall_s,
        "fastforward_wall_s": fast.timing.wall_s,
        "speedup": speedup,
        "full_points_per_sec": full.timing.points_per_sec,
        "fastforward_points_per_sec": fast.timing.points_per_sec,
    }
    assert speedup >= 10.0, (
        f"fast-forward speedup {speedup:.1f}x below the 10x floor"
    )
