"""Table III: binning of data-transfer sizes for LAMMPS and CosmoFlow."""

from __future__ import annotations

from ..hw import MiB
from ..model import table3_bins
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run", "PAPER_TABLE3"]

#: The paper's Table III (full-length runs: 5000 steps / 5 epochs).
PAPER_TABLE3 = {
    "lammps": {"<=1": 2264, "<=16": 42016, "<=256": 40008, "<=4096": 1,
               ">4096": 0, "mean_mib": 16.85},
    "cosmoflow": {"<=1": 8186, "<=16": 668, "<=256": 335, "<=4096": 640,
                  ">4096": 0, "mean_mib": 34.4},
}


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce Table III's transfer-size binning."""
    ctx = ctx or ExperimentContext()
    table = Table(
        title="Table III: data transfer sizes binned (MiB)",
        headers=["app", "<=1", "<=16", "<=256", "<=4096", ">4096",
                 "Mean [MiB]"],
    )
    result = ExperimentResult(experiment_id="table3", tables=[table])
    for profile in ctx.profiles():
        sizes = profile.trace.memcpys().sizes()
        bins = table3_bins(sizes)
        table.add_row(
            profile.name,
            bins["<=1"], bins["<=16"], bins["<=256"], bins["<=4096"],
            bins[">4096"],
            sizes.mean() / MiB,
        )
        paper = PAPER_TABLE3[profile.name]
        result.notes.append(
            f"{profile.name}: paper row {paper} — counts scale with run "
            f"length (quick mode shortens the runs); bin *shape* and mean "
            f"are the comparable quantities"
        )
    return result
