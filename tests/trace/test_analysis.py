"""Unit tests for trace analysis (violin summaries, parallelism) and export."""

import numpy as np
import pytest

from repro.trace import (
    CopyKind,
    EventKind,
    Trace,
    TraceEvent,
    Tracer,
    from_csv,
    from_json,
    kernel_duration_profile,
    launch_parallelism,
    memcpy_size_profile,
    summarize,
    to_csv,
    to_json,
)
from repro.des import Environment


def kernel(name, start, end, stream=0):
    return TraceEvent(EventKind.KERNEL, name, start, end, stream=stream)


def memcpy(nbytes, start, end, kind=CopyKind.H2D):
    return TraceEvent(EventKind.MEMCPY, f"memcpy{kind.value}", start, end,
                      nbytes=nbytes, copy_kind=kind)


class TestSummarize:
    def test_quartiles(self):
        s = summarize([1, 2, 3, 4, 5], label="x")
        assert s.median == 3
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.count == 5
        assert s.iqr == s.q3 - s.q1

    def test_density_profile_present(self):
        rng = np.random.default_rng(0)
        s = summarize(rng.normal(10, 1, 500))
        assert len(s.density_x) == 64
        assert len(s.density_y) == 64
        # Density peaks near the mean.
        peak_x = s.density_x[int(np.argmax(s.density_y))]
        assert abs(peak_x - 10) < 1.0

    def test_degenerate_constant_sample(self):
        s = summarize([2.0, 2.0, 2.0])
        assert s.median == 2.0
        assert s.density_x == ()

    def test_small_sample(self):
        s = summarize([1.0])
        assert s.count == 1
        assert s.density_x == ()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])


class TestProfiles:
    def _trace(self):
        t = Trace(name="app")
        for i in range(20):
            t.append(kernel("big", i * 1.0, i * 1.0 + 0.5))
        for i in range(20):
            t.append(kernel("small", i * 1.0 + 0.6, i * 1.0 + 0.61))
        for i in range(10):
            t.append(memcpy(1024 * (i + 1), i * 1.0 + 0.7, i * 1.0 + 0.8))
            t.append(memcpy(512, i * 1.0 + 0.85, i * 1.0 + 0.9, CopyKind.D2H))
        return t

    def test_kernel_profile_top_n_plus_total(self):
        profile = kernel_duration_profile(self._trace(), top_n=1)
        assert profile.labels() == ["big", "Total"]
        assert profile["Total"].count == 40

    def test_kernel_profile_ordering_by_total_time(self):
        profile = kernel_duration_profile(self._trace(), top_n=2)
        assert profile.labels()[0] == "big"

    def test_kernel_profile_empty_rejected(self):
        with pytest.raises(ValueError):
            kernel_duration_profile(Trace())

    def test_missing_label_raises(self):
        profile = kernel_duration_profile(self._trace(), top_n=1)
        with pytest.raises(KeyError):
            profile["nonexistent"]

    def test_memcpy_profile_directions(self):
        profile = memcpy_size_profile(self._trace())
        assert "HtoD" in profile.labels()
        assert "DtoH" in profile.labels()
        assert profile["Total"].count == 20

    def test_memcpy_profile_empty_rejected(self):
        with pytest.raises(ValueError):
            memcpy_size_profile(Trace())


class TestLaunchParallelism:
    def test_serial_trace(self):
        t = Trace()
        t.append(kernel("a", 0.0, 1.0))
        t.append(kernel("b", 1.5, 2.0))
        assert launch_parallelism(t) == 1

    def test_parallel_trace(self):
        t = Trace()
        for s in range(8):
            t.append(kernel(f"k{s}", 0.0, 1.0, stream=s))
        assert launch_parallelism(t) == 8
        # The paper's pessimistic reading halves the apparent queue depth.
        assert launch_parallelism(t, pessimistic=True) == 4

    def test_empty(self):
        assert launch_parallelism(Trace()) == 0


class TestTracer:
    def test_records_when_enabled(self):
        env = Environment()
        tracer = Tracer(env, name="t")
        tracer.record(EventKind.KERNEL, "k", 0.0, 1.0)
        assert len(tracer.trace) == 1

    def test_disabled_records_nothing(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.enabled = False
        assert tracer.record(EventKind.KERNEL, "k", 0.0, 1.0) is None
        assert len(tracer.trace) == 0

    def test_correlation_ids_unique(self):
        env = Environment()
        tracer = Tracer(env)
        ids = {tracer.next_correlation_id() for _ in range(100)}
        assert len(ids) == 100

    def test_interval_context_manager(self):
        env = Environment()
        tracer = Tracer(env)

        def proc(env):
            with tracer.interval(EventKind.API, "call"):
                yield env.timeout(2.5)

        env.process(proc(env))
        env.run()
        evt = tracer.trace[0]
        assert evt.duration == pytest.approx(2.5)


class TestExport:
    def _trace(self):
        t = Trace(name="exp")
        t.append(kernel("k1", 0.0, 1.0))
        t.append(memcpy(4096, 1.0, 2.0))
        t.append(TraceEvent(EventKind.SLACK, "slack:x", 2.0, 2.1,
                            meta={"api": "x"}))
        return t

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        original = self._trace()
        to_json(original, path)
        loaded = from_json(path)
        assert loaded.name == "exp"
        assert len(loaded) == len(original)
        assert list(loaded) == list(original)

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        original = self._trace()
        to_csv(original, path)
        loaded = from_csv(path)
        assert len(loaded) == len(original)
        for a, b in zip(loaded, original):
            assert a.name == b.name
            assert a.kind == b.kind
            assert a.nbytes == b.nbytes
            assert a.start == pytest.approx(b.start)
