"""Open-loop request arrivals for the serving DES.

:func:`generate_requests` is a **pure function** of the profiling
config: a seeded generator draws Poisson interarrival gaps (or takes an
explicit arrival trace verbatim) plus lognormal prompt/decode token
counts, and quantizes every arrival timestamp onto the dyadic tick
grid the DES runs on. Purity is the property the sweep machinery
leans on — the same config produces the bit-identical request stream
whether the run happens inline, in a process-pool worker, or on
another shard host, so cached profiles and sharded sweeps stay
byte-identical (the same argument as the proxy's seeded kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from ...des import quantize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .serving import InferenceProfileConfig

__all__ = ["Request", "generate_requests"]

#: Token-count draws are clipped at this multiple of the mean so a
#: lucky lognormal tail cannot make one request dominate a short run.
_TOKEN_CLIP_FACTOR = 8


@dataclass(frozen=True)
class Request:
    """One inference request as admitted by the frontend."""

    rid: int
    #: Tick-quantized arrival time (seconds from run start).
    arrival_s: float
    prompt_tokens: int
    decode_tokens: int

    def __post_init__(self) -> None:
        if self.rid < 0:
            raise ValueError("rid must be non-negative")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.prompt_tokens <= 0 or self.decode_tokens <= 0:
            raise ValueError("token counts must be positive")


def _lognormal_tokens(
    rng: np.random.Generator, mean: int, sigma: float, count: int
) -> np.ndarray:
    """``count`` integer token draws with the configured mean/shape."""
    if sigma == 0:
        return np.full(count, mean, dtype=np.int64)
    # Parameterize so the draw's expectation equals ``mean``.
    mu = np.log(float(mean)) - sigma**2 / 2
    draws = np.rint(rng.lognormal(mu, sigma, count)).astype(np.int64)
    return np.clip(draws, 1, mean * _TOKEN_CLIP_FACTOR)


def generate_requests(
    config: "InferenceProfileConfig",
) -> Tuple[Request, ...]:
    """The config's full request stream, sorted by arrival time.

    With :attr:`~repro.apps.inference.InferenceProfileConfig.arrival_trace`
    set, those timestamps are used verbatim (quantized); otherwise
    ``num_requests`` Poisson arrivals at ``request_rate_per_s``. Token
    counts are drawn from the same seeded stream either way.
    """
    rng = np.random.default_rng(config.seed)
    if config.arrival_trace is not None:
        arrivals = np.asarray(config.arrival_trace, dtype=float)
        if arrivals.ndim != 1 or len(arrivals) == 0:
            raise ValueError("arrival_trace must be a non-empty 1-D sequence")
        if np.any(arrivals < 0):
            raise ValueError("arrival_trace times must be non-negative")
        arrivals = np.sort(arrivals)
    else:
        gaps = rng.exponential(
            1.0 / config.request_rate_per_s, config.num_requests
        )
        arrivals = np.cumsum(gaps)
    count = len(arrivals)
    prompts = _lognormal_tokens(
        rng, config.prompt_tokens_mean, config.prompt_tokens_sigma, count
    )
    decodes = _lognormal_tokens(
        rng, config.decode_tokens_mean, config.decode_tokens_sigma, count
    )
    return tuple(
        Request(
            rid=i,
            arrival_s=quantize(float(arrivals[i])),
            prompt_tokens=int(prompts[i]),
            decode_tokens=int(decodes[i]),
        )
        for i in range(count)
    )
