"""Experiment registry and runner.

Maps each paper artifact (table/figure id) to its reproduction
function; the CLI and the benchmark harness both dispatch through
:func:`run_experiment`.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Callable, Dict, List, Optional

from ..obs import get_registry
from .context import ExperimentContext
from .report import ExperimentResult
from . import (
    cosmoflow_cpu,
    discussion,
    extensions,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    omp_scaling,
    table1,
    table2,
    table3,
    table4,
    validation,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "experiment_ids"]

#: Registry: experiment id -> runner(ctx) -> ExperimentResult.
EXPERIMENTS: Dict[str, Callable[[Optional[ExperimentContext]], ExperimentResult]] = {
    "table1": table1.run,
    "figure2": figure2.run,
    "omp_scaling": omp_scaling.run,
    "cosmoflow_cpu": cosmoflow_cpu.run,
    "table2": table2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "table3": table3.run,
    "table4": table4.run,
    "validation": validation.run,
    "figure1": figure1.run,
    "discussion": discussion.run,
    # Extensions: claims the paper makes in prose, quantified.
    "ext_collectives": extensions.run_collectives,
    "ext_congestion": extensions.run_congestion,
    "ext_preload": extensions.run_preload,
    "ext_power": extensions.run_power,
    "ext_remoting": extensions.run_remoting,
    "ext_sensitivity": extensions.run_sensitivity,
    "ext_graphs": extensions.run_graphs,
    "ext_throughput": extensions.run_throughput,
    "ext_weak_scaling": extensions.run_weak_scaling,
    "ext_resilience": extensions.run_resilience,
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, ctx: Optional[ExperimentContext] = None
) -> ExperimentResult:
    """Run one experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](ctx)


def run_all(
    ctx: Optional[ExperimentContext] = None, *, workers: int = 1
) -> List[ExperimentResult]:
    """Run every experiment, sharing one context (and its caches).

    Experiments are independent of each other once the shared artifacts
    exist, so ``workers > 1`` (keyword-only, like every execution knob
    on the stable API) fans them out over a process pool: the
    parent first builds the proxy surface (warming the disk caches),
    then each worker rebuilds an equivalent context that loads those
    caches instead of re-sweeping. Results come back in registry order
    regardless of completion order. Falls back to the sequential loop
    on platforms without ``fork`` or where pools cannot start.

    When metrics are enabled (:mod:`repro.obs`), per-experiment wall
    times are published into the ``experiments`` section of the active
    registry (sequential path: one histogram observation per
    experiment; pool path: one batch wall-time total).
    """
    ctx = ctx or ExperimentContext()
    ids = experiment_ids()
    if workers <= 1 or len(ids) <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        return _run_all_sequential(ids, ctx)

    # Warm the shared disk caches once so workers load, not re-measure.
    ctx.surface()
    try:
        mp_ctx = multiprocessing.get_context("fork")
        t0 = perf_counter()
        with ProcessPoolExecutor(
            max_workers=min(workers, len(ids)),
            mp_context=mp_ctx,
            initializer=_init_worker_context,
            initargs=(ctx.quick, ctx.cache_dir, ctx.cache),
        ) as pool:
            results = list(pool.map(_run_in_worker, ids))
        reg = get_registry()
        if reg.enabled:
            reg.counter("experiments.runs").inc(len(results))
            reg.counter("experiments.batch_wall_s").inc(perf_counter() - t0)
            reg.gauge("experiments.workers").set(min(workers, len(ids)))
        return results
    except (OSError, PermissionError, BrokenProcessPool):
        # Pool unavailable (restricted environment): same results,
        # sequentially.
        return _run_all_sequential(ids, ctx)


def _run_all_sequential(
    ids: List[str], ctx: ExperimentContext
) -> List[ExperimentResult]:
    reg = get_registry()
    results = []
    for eid in ids:
        t0 = perf_counter()
        results.append(run_experiment(eid, ctx))
        if reg.enabled:
            reg.counter("experiments.runs").inc()
            reg.histogram("experiments.wall_s").observe(perf_counter() - t0)
    return results


#: Per-worker-process context, created once by the pool initializer.
_WORKER_CTX: Optional[ExperimentContext] = None


def _init_worker_context(quick, cache_dir, cache) -> None:
    global _WORKER_CTX
    # Workers stay sequential internally — the experiment level is the
    # parallel axis here; nesting pools would only oversubscribe.
    _WORKER_CTX = ExperimentContext(
        quick=quick, cache_dir=cache_dir, workers=1, cache=cache
    )


def _run_in_worker(experiment_id: str) -> ExperimentResult:
    assert _WORKER_CTX is not None
    return run_experiment(experiment_id, _WORKER_CTX)
