"""Integration tests: every paper artifact reproduces its shape.

These run the actual experiment pipeline (quick configuration). The
proxy response surface is cached on disk after the first run, so the
first invocation on a fresh checkout takes a couple of minutes and
subsequent runs are fast.
"""

import pytest

from repro.experiments import (
    ExperimentContext,
    experiment_ids,
    run_experiment,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(quick=True)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        # 13 paper artifacts + 10 prose-claim extensions.
        assert len(ids) == 23
        for required in ("table1", "table2", "table3", "table4",
                         "figure1", "figure2", "figure3", "figure4",
                         "figure5", "validation", "discussion",
                         "ext_collectives", "ext_congestion",
                         "ext_preload", "ext_power"):
            assert required in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("nope")


class TestTable1:
    def test_runtimes_within_tolerance_of_paper(self, ctx):
        result = run_experiment("table1", ctx)
        deltas = result.tables[0].column("Delta %")
        assert all(abs(d) < 7 for d in deltas)

    def test_atom_counts_cubic(self, ctx):
        result = run_experiment("table1", ctx)
        atoms = result.tables[0].column("Total Atoms")
        assert atoms == [32000, 864000, 2048000, 4000000, 6912000]


class TestFigure2:
    def test_shape_anchors(self, ctx):
        result = run_experiment("figure2", ctx)
        s = result.series[0]
        box20 = s.lines["Box Size 20"]
        box120 = s.lines["Box Size 120"]
        # box 20 monotonically degrades; box 120 improves massively.
        assert all(b > a for a, b in zip(box20, box20[1:]))
        assert box120[-1] == pytest.approx(0.444, abs=0.03)
        # box 60 at 8 procs (x index 3).
        assert s.lines["Box Size 60"][3] == pytest.approx(0.828, abs=0.02)


class TestOmpScaling:
    def test_headline_rows(self, ctx):
        result = run_experiment("omp_scaling", ctx)
        measured = result.tables[0].column("measured")
        # -52.3% at 6 threads and -76.4% aggregate, within a few points.
        assert abs(float(measured[0].split("%")[0]) - 52.3) < 4
        assert abs(float(measured[1].split("%")[0]) - 76.4) < 4
        # box 200: 48 cores beat 24 (positive improvement).
        assert float(measured[2].split("%")[0]) > 0

    def test_thread_curves_monotone_for_large_boxes(self, ctx):
        result = run_experiment("omp_scaling", ctx)
        line = result.series[0].lines["Box Size 120"]
        assert all(b < a for a, b in zip(line, line[1:]))


class TestCosmoflowCpu:
    def test_flat_scaling(self, ctx):
        result = run_experiment("cosmoflow_cpu", ctx)
        ys = result.series[0].lines["CosmoFlow"]
        # Degrades below 2 cores, flat at and above.
        assert ys[0] > 1.0
        assert all(y == pytest.approx(1.0) for y in ys[1:])


class TestTable2:
    def test_iteration_bounds(self, ctx):
        result = run_experiment("table2", ctx)
        iters = result.tables[0].column("Iterations (N)")
        assert iters[0] == 1000  # 2^9 at the ceiling
        assert 5 <= iters[-1] <= 20  # 2^15 near the floor

    def test_matrix_mib_column(self, ctx):
        result = run_experiment("table2", ctx)
        assert result.tables[0].column("Matrix [MiB]") == [1, 16, 256, 4096]

    def test_kernel_times_monotone(self, ctx):
        result = run_experiment("table2", ctx)
        times = result.tables[0].column("Kernel Runtime [s]")
        assert all(b > a for a, b in zip(times, times[1:]))


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return run_experiment("figure3", ctx)

    def test_four_panels(self, result):
        assert len(result.series) == 4

    def test_no_2_15_above_two_threads(self, result):
        assert 2.0**15 in result.series[0].x
        assert 2.0**15 in result.series[1].x
        assert 2.0**15 not in result.series[2].x
        assert 2.0**15 not in result.series[3].x

    def test_larger_kernels_more_resilient(self, result):
        panel1 = result.series[0]
        line = panel1.lines["slack 10000 us"]
        assert all(b <= a for a, b in zip(line, line[1:]))
        assert line[0] > 10  # 2^9 devastated at 10 ms

    def test_threads_raise_tolerance(self, result):
        at_10ms_512 = [s.lines["slack 10000 us"][0] for s in result.series]
        assert all(b <= a for a, b in zip(at_10ms_512, at_10ms_512[1:]))

    def test_2_13_about_10pct_at_10ms(self, result):
        panel1 = result.series[0]
        idx = panel1.x.index(2.0**13)
        assert panel1.lines["slack 10000 us"][idx] == pytest.approx(1.09, abs=0.03)

    def test_values_never_below_one(self, result):
        for panel in result.series:
            for ys in panel.lines.values():
                assert all(y >= 1.0 for y in ys)


class TestFigure4:
    def test_both_apps_with_total_violin(self, ctx):
        result = run_experiment("figure4", ctx)
        assert len(result.tables) == 2
        for table in result.tables:
            assert table.column("kernel")[-1] == "Total"

    def test_cosmoflow_top5_share_near_half(self, ctx):
        result = run_experiment("figure4", ctx)
        cosmo = result.tables[1]
        note = cosmo.notes[0]
        share = float(note.split("cover ")[1].split("%")[0])
        assert 40 < share < 65  # paper: 49.9%


class TestFigure5:
    def test_directions_and_total(self, ctx):
        result = run_experiment("figure5", ctx)
        for table in result.tables:
            labels = table.column("direction")
            assert "Total" in labels


class TestTable3:
    def test_bin_shapes(self, ctx):
        result = run_experiment("table3", ctx)
        table = result.tables[0]
        rows = {row[0]: row for row in table.rows}
        lam = rows["lammps"]
        # LAMMPS: bulk in the <=16 and <=256 bins, nothing above 256.
        assert lam[2] > 10 * lam[1]
        assert lam[3] > 10 * lam[1]
        assert lam[4] == 0 and lam[5] == 0
        cosmo = rows["cosmoflow"]
        # CosmoFlow: small copies dominate by count; large prefetch
        # transfers populate the <=4096 bin.
        assert cosmo[1] > cosmo[2] and cosmo[1] > cosmo[3]
        assert cosmo[4] > 0
        assert cosmo[5] == 0

    def test_means_near_paper(self, ctx):
        result = run_experiment("table3", ctx)
        table = result.tables[0]
        rows = {row[0]: row for row in table.rows}
        assert rows["lammps"][6] == pytest.approx(16.85, rel=0.25)
        assert rows["cosmoflow"][6] == pytest.approx(34.4, rel=0.35)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return run_experiment("table4", ctx)

    def test_headline_under_one_percent_at_100us(self, result):
        assert any("REPRODUCED" in n for n in result.notes)
        table = result.tables[0]
        for row in table.rows:
            if row[1] == 100.0:
                assert row[3] < 1.0  # upper bound percent

    def test_lower_never_exceeds_upper(self, result):
        for row in result.tables[0].rows:
            assert row[2] <= row[3] + 1e-9

    def test_penalties_grow_with_slack(self, result):
        table = result.tables[0]
        for app in ("lammps", "cosmoflow"):
            uppers = [row[3] for row in table.rows if row[0] == app]
            assert all(b >= a for a, b in zip(uppers, uppers[1:]))


class TestValidation:
    def test_lower_bound_quality(self, ctx):
        result = run_experiment("validation", ctx)
        table = result.tables[0]
        for row in table.rows:
            actual, lower = row[2], row[3]
            tol = max(0.005, 0.06 * actual)
            assert abs(lower - actual) <= tol

    def test_jitter_increases_pessimism(self, ctx):
        result = run_experiment("validation", ctx)
        jt = result.tables[1]
        for row in jt.rows:
            assert row[4] >= row[3]  # jittered upper >= exact upper


class TestFigure1:
    def test_slack_grows_with_scale(self, ctx):
        result = run_experiment("figure1", ctx)
        slacks = result.tables[0].column("slack [us]")
        assert slacks[0] == 0  # traditional
        assert all(b > a for a, b in zip(slacks, slacks[1:]))

    def test_all_scales_far_below_100us(self, ctx):
        result = run_experiment("figure1", ctx)
        slacks = result.tables[0].column("slack [us]")
        assert max(slacks) < 100


class TestDiscussion:
    def test_cdi_ratios(self, ctx):
        result = run_experiment("discussion", ctx)
        table = result.tables[0]
        cdi_rows = [r for r in table.rows if r[0] == "CDI"]
        ratios = {r[1]: r[4] for r in cdi_rows}
        assert ratios["lammps"] == pytest.approx(19.2)
        assert ratios["cosmoflow"] == pytest.approx(4.8)
        assert all(r[5] == 0 for r in cdi_rows)  # nothing trapped
