"""Shared-resource primitives for the DES kernel.

Three families, mirroring the classic SimPy set:

* :class:`Resource` / :class:`PriorityResource` — a semaphore with
  ``capacity`` slots; processes ``yield resource.request()`` and later
  ``release()`` (or use the request as a context manager).
* :class:`Container` — a bulk-quantity store (e.g. bytes of GPU memory)
  with ``put``/``get`` of arbitrary amounts.
* :class:`Store` — a FIFO buffer of discrete items, used for command
  queues between the host-side runtime and the simulated GPU engines.

All waiting is fair (FIFO) unless a priority is given.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generic, Optional, TypeVar

from .core import Environment, Event
from .errors import SimulationError

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "Preempted",
    "PreemptiveResource",
    "PreemptiveRequest",
    "Container",
    "ContainerPut",
    "ContainerGet",
    "Store",
    "Barrier",
    "StorePut",
    "StoreGet",
    "FilterStore",
]

T = TypeVar("T")


class Request(Event):
    """A pending request for one slot of a :class:`Resource`.

    Supports the context-manager protocol so callers can write::

        with resource.request() as req:
            yield req
            ...  # slot held here
    """

    __slots__ = ("resource", "usage_since", "owner")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        #: Simulation time at which the request was granted.
        self.usage_since: Optional[float] = None
        #: The process that issued the request (interrupt target for
        #: preemption), if issued from within a process.
        self.owner = resource.env.active_process
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot if held, or withdraw the pending request."""
        if self.triggered and self.usage_since is not None:
            self.resource.release(self)
        else:
            self.resource._withdraw(self)


class Release(Event):
    """Event that fires immediately once a slot has been given back."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.request = request
        resource._do_release(self)


class Resource:
    """A semaphore-like resource with a fixed number of slots.

    Parameters
    ----------
    env:
        The simulation environment.
    capacity:
        Number of concurrent holders allowed (>= 1).
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Ask for one slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Give back the slot held by ``request``."""
        return Release(self, request)

    # -- internals -----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed(request)

    def _withdraw(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise SimulationError(
                "released a request that does not hold this resource"
            ) from None
        release.request.usage_since = None
        self._wake_next()
        release.succeed(None)

    def _wake_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.pop(0)
            self._grant(nxt)


class Preempted:
    """Cause object delivered when a request is preempted."""

    def __init__(self, by: Any, usage_since: Optional[float]) -> None:
        self.by = by
        self.usage_since = usage_since

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Preempted(by={self.by!r}, usage_since={self.usage_since})"


class PriorityRequest(Request):
    """A :class:`Request` with a priority (lower value = more urgent)."""

    __slots__ = ("priority", "time", "_key")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.time = resource.env.now
        self._key = (priority, self.time)
        super().__init__(resource)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._pq: list[tuple[tuple[int, float], int, PriorityRequest]] = []
        self._tiebreak = itertools.count()

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Ask for one slot with the given ``priority``."""
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            heapq.heappush(self._pq, (request._key, next(self._tiebreak), request))
            self.queue.append(request)

    def _withdraw(self, request: Request) -> None:
        super()._withdraw(request)
        self._pq = [item for item in self._pq if item[2] is not request]
        heapq.heapify(self._pq)

    def _wake_next(self) -> None:
        while self._pq and len(self.users) < self._capacity:
            _, _, nxt = heapq.heappop(self._pq)
            try:
                self.queue.remove(nxt)
            except ValueError:  # withdrawn concurrently
                continue
            self._grant(nxt)


class PreemptiveRequest(PriorityRequest):
    """A :class:`PriorityRequest` that may evict a worse holder."""

    __slots__ = ("preempt",)

    def __init__(
        self, resource: "PreemptiveResource", priority: int = 0,
        preempt: bool = True,
    ) -> None:
        self.preempt = preempt
        super().__init__(resource, priority)


class PreemptiveResource(PriorityResource):
    """A :class:`PriorityResource` whose requests can evict holders.

    A request with ``preempt=True`` that finds the resource full will
    evict the *worst* current holder (highest priority value, most
    recent acquisition) if that holder is strictly lower-priority than
    the request. The evicted process receives an :class:`Interrupt`
    whose cause is a :class:`Preempted` record carrying the usurper
    and the victim's acquisition time.

    Used for CDI scheduling studies where an urgent composition can
    reclaim pooled GPUs from a preemptible job.
    """

    def request(  # type: ignore[override]
        self, priority: int = 0, preempt: bool = True
    ) -> PreemptiveRequest:
        """Ask for a slot; optionally preempting a worse holder."""
        return PreemptiveRequest(self, priority, preempt)

    def _do_request(self, request: Request) -> None:
        if (
            isinstance(request, PreemptiveRequest)
            and request.preempt
            and len(self.users) >= self._capacity
        ):
            self._maybe_preempt(request)
        super()._do_request(request)

    def _maybe_preempt(self, request: PreemptiveRequest) -> None:
        victims = [u for u in self.users if isinstance(u, PriorityRequest)]
        if not victims:
            return
        victim = max(victims, key=lambda u: u._key)
        if victim._key <= request._key:
            return  # nobody strictly worse than the usurper
        self.users.remove(victim)
        cause = Preempted(by=request, usage_since=victim.usage_since)
        victim.usage_since = None
        if victim.owner is not None and victim.owner.is_alive:
            victim.owner.interrupt(cause)


class ContainerPut(Event):
    """Pending deposit of ``amount`` into a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._dispatch()


class ContainerGet(Event):
    """Pending withdrawal of ``amount`` from a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._dispatch()


class Container:
    """A homogeneous bulk store (e.g. bytes of device memory).

    ``put`` blocks while the container is too full; ``get`` blocks
    while it holds less than requested.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._put_waiters: list[ContainerPut] = []
        self._get_waiters: list[ContainerGet] = []

    @property
    def capacity(self) -> float:
        """Maximum amount the container can hold."""
        return self._capacity

    @property
    def level(self) -> float:
        """Current amount held."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount``; fires once it fits."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount``; fires once available."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed(None)
                    progressed = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed(None)
                    progressed = True


class StorePut(Event):
    """Pending insertion of ``item`` into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._dispatch()


class StoreGet(Event):
    """Pending removal of the next item from a :class:`Store`."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_waiters.append(self)
        store._dispatch()


class Store(Generic[T]):
    """A FIFO buffer of discrete items with bounded capacity.

    This is the command-queue primitive: the host runtime ``put``s
    kernel-launch and memcpy commands, the simulated GPU engines
    ``get`` them.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.items: list[T] = []
        self._put_waiters: list[StorePut] = []
        self._get_waiters: list[StoreGet] = []

    @property
    def capacity(self) -> float:
        """Maximum number of queued items."""
        return self._capacity

    def put(self, item: T) -> StorePut:
        """Insert ``item``; fires once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove the oldest item; fires once one exists."""
        return StoreGet(self)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters and len(self.items) < self._capacity:
                put = self._put_waiters.pop(0)
                self.items.append(put.item)
                put.succeed(None)
                progressed = True
            if self._get_waiters and self.items:
                get = self._get_waiters.pop(0)
                get.succeed(self.items.pop(0))
                progressed = True


class Barrier:
    """A cyclic barrier for ``parties`` processes.

    Each participant yields :meth:`wait`; the event fires once all
    parties have arrived, and the barrier resets for the next cycle.
    Models OpenMP worksharing-construct barriers.
    """

    def __init__(self, env: Environment, parties: int) -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self._waiting: list[Event] = []
        self.cycles_completed = 0

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return len(self._waiting)

    def wait(self) -> Event:
        """Arrive at the barrier; the event fires when all have arrived."""
        evt = Event(self.env)
        self._waiting.append(evt)
        if len(self._waiting) >= self.parties:
            waiters, self._waiting = self._waiting, []
            self.cycles_completed += 1
            for w in waiters:
                w.succeed(self.cycles_completed)
        return evt


class FilterStoreGet(StoreGet):
    """A :class:`StoreGet` that only matches items passing a filter."""

    __slots__ = ("filter",)

    def __init__(
        self, store: "FilterStore", filter: Callable[[Any], bool]
    ) -> None:
        self.filter = filter
        super().__init__(store)


class FilterStore(Store[T]):
    """A :class:`Store` whose getters can select items by predicate."""

    def get(self, filter: Callable[[T], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        """Remove the oldest item satisfying ``filter``."""
        return FilterStoreGet(self, filter)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters and len(self.items) < self._capacity:
                put = self._put_waiters.pop(0)
                self.items.append(put.item)
                put.succeed(None)
                progressed = True
            for get in list(self._get_waiters):
                assert isinstance(get, FilterStoreGet)
                for i, item in enumerate(self.items):
                    if get.filter(item):
                        self.items.pop(i)
                        self._get_waiters.remove(get)
                        get.succeed(item)
                        progressed = True
                        break
