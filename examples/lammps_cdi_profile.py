#!/usr/bin/env python
"""CDI-profile a CPU-heavy scientific application (LAMMPS LJ).

The paper's workflow for deciding whether a workload tolerates
row-scale disaggregation, end to end:

1. find the application's CPU affinity (strong scaling over MPI
   ranks and OpenMP threads — Figure 2 / Section IV-A);
2. trace a representative run (kernel durations, memcpy sizes, queue
   parallelism — Figures 4-5);
3. compare against the proxy's slack response surface via
   Equations 2-3 and read off the predicted penalty bounds
   (Table IV).

Run:  python examples/lammps_cdi_profile.py
"""

from repro import (
    CDIProfiler,
    ExperimentContext,
    LammpsProfileConfig,
    LammpsScalingModel,
    LJParams,
    fibre_distance_for_latency,
    profile_lammps,
)
from repro.hw import MiB

BOX = 120
SLACKS = (1e-6, 1e-5, 1e-4, 1e-3)


def main() -> None:
    model = LammpsScalingModel()
    params = LJParams(BOX)

    print(f"=== 1. CPU affinity (LJ box {BOX}, {params.atoms:,} atoms) ===")
    for procs in (1, 8, 16, 24):
        t = model.runtime(params, procs)
        print(f"  {procs:2d} MPI ranks: {t:7.1f} s "
              f"({model.normalized_runtime(params, procs):.3f}x)")
    t48 = model.runtime(params, 8, 6)
    print(f"  8 ranks x 6 threads (48 cores): {t48:7.1f} s "
          f"({t48 / model.runtime(params, 1, 1):.3f}x)")
    print("  -> CPU-hungry: a CDI system can grant whole CPU nodes per GPU\n")

    print("=== 2. trace the run (simulated NSys) ===")
    profile = profile_lammps(
        LammpsProfileConfig(params=LJParams(BOX, steps=500))
    )
    kernels = profile.trace.kernels()
    copies = profile.trace.memcpys()
    print(f"  {len(kernels)} kernels, median duration "
          f"{sorted(kernels.durations())[len(kernels) // 2] * 1e3:.2f} ms")
    print(f"  {len(copies)} transfers, mean size "
          f"{copies.sizes().mean() / MiB:.1f} MiB")
    print(f"  queue parallelism: {profile.queue_parallelism} "
          f"(one launcher per MPI rank)\n")

    print("=== 3. predicted slack penalty (Table IV pipeline) ===")
    ctx = ExperimentContext(quick=True)
    profiler = CDIProfiler(ctx.surface())
    print(f"  {'slack':>10}  {'distance':>10}  {'lower':>8}  {'upper':>8}")
    for slack in SLACKS:
        p = profiler.predict(profile, slack)
        km = fibre_distance_for_latency(slack) / 1e3
        print(f"  {slack * 1e6:7.0f} us  {km:7.2f} km  "
              f"{p.lower_percent:7.3f}%  {p.upper_percent:7.3f}%")
    verdict = profiler.predict(profile, 100e-6)
    print(f"\nverdict: at 100 us (~20 km) LAMMPS pessimistically loses "
          f"{verdict.upper_percent:.3f}% — row-scale CDI is viable for it.")


if __name__ == "__main__":
    main()
