"""Section IV-D methodology validation: proxy self-prediction."""

from __future__ import annotations

from ..model import validation_report
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Self-predict the proxy's penalty from its own traces."""
    ctx = ctx or ExperimentContext()
    surface = ctx.surface()
    iterations = 25 if ctx.quick else None
    table = Table(
        title="Methodology self-validation (single thread)",
        headers=["matrix", "slack [us]", "actual", "lower", "upper",
                 "lower err"],
    )
    results = validation_report(
        surface,
        matrix_sizes=(2**9, 2**11, 2**13),
        slack_values_s=(1e-4, 1e-2),
        threads=1,
        iterations=iterations,
    )
    worst = 0.0
    for r in results:
        table.add_row(
            f"2^{r.matrix_size.bit_length() - 1}", r.slack_s * 1e6,
            round(r.actual_penalty, 4), round(r.predicted_lower, 4),
            round(r.predicted_upper, 4), round(r.lower_error, 4),
        )
        scale = max(1.0, r.actual_penalty / 0.05)
        worst = max(worst, abs(r.lower_error) / scale)
    table.notes.append(
        "paper: the lower bound self-predicts within 0.005 of the actual "
        "(single-threaded); the residue is the host-time fraction "
        "Equation 2 leaves unweighted"
    )

    jitter_table = Table(
        title="Upper-bound pessimism under measurement noise",
        headers=["matrix", "slack [us]", "actual", "upper (exact)",
                 "upper (jittered)"],
    )
    for n in (2**11,):
        for s in (1e-2,):
            exact = validation_report(
                surface, (n,), (s,), iterations=iterations,
                duration_jitter=0.0,
            )[0]
            noisy = validation_report(
                surface, (n,), (s,), iterations=iterations,
                duration_jitter=0.15,
            )[0]
            jitter_table.add_row(
                f"2^{n.bit_length() - 1}", s * 1e6,
                round(exact.actual_penalty, 4),
                round(exact.predicted_upper, 4),
                round(noisy.predicted_upper, 4),
            )
    jitter_table.notes.append(
        "measurement noise pushes observations off grid points; the "
        "round-down bracket then reaches the far more slack-sensitive "
        "smaller matrix — the paper's 'severely pessimistic' upper bound"
    )
    return ExperimentResult(
        experiment_id="validation",
        tables=[table, jitter_table],
        notes=[f"worst scaled lower-bound error: {worst:.4f} (tolerance 0.005 "
               f"scaled by penalty magnitude)"],
    )
