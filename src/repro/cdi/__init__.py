"""Composable Disaggregated Infrastructure: pools, composer, schedulers.

Models the resource-management side of the paper: CPU nodes and GPU
chassis as independent pools, exact-ratio composition, the
traditional-vs-CDI scheduling comparison of Section V, and the mapping
from physical placement to the slack a job experiences.
"""

from .composer import Composer, CompositionError
from .fleet import (
    FleetConfig,
    FleetJobs,
    FleetResult,
    TenantSpec,
    TenantStats,
    assert_fleet_parity,
    generate_fleet_jobs,
    run_fleet,
)
from .power import PowerComparison, PowerModel, compare_power
from .placement import (
    PLACEMENT_POLICIES,
    CompositionSlack,
    FleetTopology,
    PlacementResolver,
)
from .resources import Composition, CPUNode, GPUChassis, ResourcePool
from .simulation import (
    ClusterSpec,
    JobMetrics,
    SimJob,
    SimulationMetrics,
    compare_throughput,
    simulate_cdi,
    simulate_traditional,
    synthetic_job_mix,
)
from .scheduler import (
    CDIScheduler,
    JobPlacement,
    JobRequest,
    ScheduleOutcome,
    TraditionalScheduler,
)
from .utilization import (
    SchedulingComparison,
    compare_schedulers,
    discussion_example,
)

__all__ = [
    "CPUNode",
    "GPUChassis",
    "ResourcePool",
    "Composition",
    "Composer",
    "CompositionError",
    "JobRequest",
    "JobPlacement",
    "ScheduleOutcome",
    "TraditionalScheduler",
    "CDIScheduler",
    "PlacementResolver",
    "CompositionSlack",
    "SchedulingComparison",
    "compare_schedulers",
    "discussion_example",
    "PowerModel",
    "PowerComparison",
    "compare_power",
    "SimJob",
    "ClusterSpec",
    "JobMetrics",
    "SimulationMetrics",
    "simulate_traditional",
    "simulate_cdi",
    "synthetic_job_mix",
    "compare_throughput",
    "FleetTopology",
    "PLACEMENT_POLICIES",
    "TenantSpec",
    "TenantStats",
    "FleetConfig",
    "FleetJobs",
    "FleetResult",
    "generate_fleet_jobs",
    "run_fleet",
    "assert_fleet_parity",
]
