"""The Tracer: records simulator activity into a :class:`Trace`.

Plays the role NSight Systems plays in the paper: it observes the
CUDA-like runtime from outside (no application-source knowledge) and
records kernel executions, memcpys, API calls and injected slack.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from ..des import Environment
from .events import CopyKind, EventKind, TraceEvent
from .store import ColumnarTrace

__all__ = ["Tracer", "NullTracer"]


class Tracer:
    """Collects :class:`TraceEvent` records from a running simulation.

    The runtime calls :meth:`record` (or the :meth:`interval` context
    manager) as activity completes. ``enabled`` can be toggled to
    bracket the traced region, mirroring profiler capture windows.

    Events land in an append-only :class:`ColumnarTrace`: recording
    writes numpy columns directly (no ``TraceEvent`` allocation), and
    the dataclass view is materialized lazily only where analysis
    still iterates events.
    """

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.trace = ColumnarTrace(name=name)
        self.enabled = True
        self._correlation = itertools.count(1)

    def next_correlation_id(self) -> int:
        """A fresh correlation id joining API call and device activity."""
        return next(self._correlation)

    def record(
        self,
        kind: EventKind,
        name: str,
        start: float,
        end: float,
        *,
        stream: Optional[int] = None,
        nbytes: int = 0,
        copy_kind: Optional[CopyKind] = None,
        correlation_id: int = 0,
        thread: int = 0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Optional[TraceEvent]:
        """Append a completed interval to the trace (if enabled).

        Validation matches :class:`TraceEvent` construction; the event
        itself is only materialized on demand, so the return value is
        always ``None``.
        """
        if not self.enabled:
            return None
        self.trace.record_fast(
            kind,
            name,
            start,
            end,
            stream=stream,
            nbytes=nbytes,
            copy_kind=copy_kind,
            correlation_id=correlation_id,
            thread=thread,
            meta=meta,
        )
        return None

    @contextmanager
    def interval(
        self,
        kind: EventKind,
        name: str,
        **kwargs: Any,
    ) -> Iterator[None]:
        """Record an interval spanning the with-block's simulated time.

        Only valid when simulated time can advance inside the block
        (i.e. within a process that yields).
        """
        start = self.env.now
        try:
            yield
        finally:
            self.record(kind, name, start, self.env.now, **kwargs)


class NullTracer(Tracer):
    """A tracer that records nothing (profiling disabled)."""

    def __init__(self, env: Environment) -> None:
        super().__init__(env, name="null")
        self.enabled = False
