"""Kernel cost models for the simulated GPU.

A :class:`KernelSpec` describes one kernel launch; its execution time
on a given GPU comes either from an explicit duration (application
models replaying measured distributions) or from a roofline estimate
(compute-bound vs memory-bound) with a size-dependent efficiency
curve. :func:`matmul_kernel` builds the square SGEMM the paper's slack
proxy runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..hw import GPUSpec

__all__ = ["KernelSpec", "matmul_kernel", "matmul_efficiency", "matmul_sm_fraction", "MATMUL_EFF_HALF_N"]

#: Matrix dimension at which SGEMM reaches half its peak efficiency.
#: Small GEMMs underutilize the SMs (tile quantization, launch ramp);
#: the saturating curve n / (n + half_n) captures the measured shape.
MATMUL_EFF_HALF_N = 1536.0

_kernel_ids = itertools.count(1)


@dataclass(frozen=True)
class KernelSpec:
    """One kernel launch's work description.

    Exactly one of ``duration_s`` or (``flops`` and/or
    ``bytes_accessed``) should describe the work: an explicit duration
    wins; otherwise the roofline bound is used.
    """

    name: str
    duration_s: Optional[float] = None
    flops: float = 0.0
    bytes_accessed: float = 0.0
    efficiency: float = 1.0
    sm_fraction: float = 1.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_s is not None and self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.flops < 0 or self.bytes_accessed < 0:
            raise ValueError("work terms must be non-negative")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if not 0 < self.sm_fraction <= 1:
            raise ValueError("sm_fraction must be in (0, 1]")
        if self.duration_s is None and self.flops == 0 and self.bytes_accessed == 0:
            raise ValueError(
                f"kernel {self.name!r} has no duration and no work description"
            )

    def execution_time(self, gpu: GPUSpec) -> float:
        """Busy time this kernel occupies the compute engine for.

        Roofline: the larger of the compute-bound time (at the
        kernel's efficiency) and the memory-bound time, floored at the
        GPU's minimum kernel time.
        """
        if self.duration_s is not None:
            return max(self.duration_s, gpu.min_kernel_time_s)
        compute_t = (
            self.flops / (gpu.peak_flops * self.efficiency) if self.flops else 0.0
        )
        memory_t = (
            self.bytes_accessed / gpu.memory_bandwidth_Bps
            if self.bytes_accessed
            else 0.0
        )
        return max(compute_t, memory_t, gpu.min_kernel_time_s)


def matmul_efficiency(n: int, half_n: float = MATMUL_EFF_HALF_N) -> float:
    """Fraction of peak FLOP/s an ``n x n`` SGEMM achieves.

    Saturating curve ``n / (n + half_n)``: ~25% at n=512, ~84% at
    n=8192, ~96% at n=32768 — consistent with published cuBLAS SGEMM
    efficiency trends on A100.
    """
    if n <= 0:
        raise ValueError("matrix dimension must be positive")
    return n / (n + half_n)


#: SGEMM tile edge: one 128x128 output tile occupies roughly one SM.
_GEMM_TILE = 128


def matmul_sm_fraction(n: int, sm_count: int = 108) -> float:
    """Fraction of the device's SMs an ``n x n`` SGEMM occupies.

    One thread block computes a 128x128 output tile; the kernel fills
    the device once its (n/128)^2 blocks cover the SM count. Small
    GEMMs leave SMs free for concurrent kernels — the occupancy
    headroom the :class:`OccupancyComputeEngine` models.
    """
    if n <= 0:
        raise ValueError("matrix dimension must be positive")
    blocks = max(1, (n + _GEMM_TILE - 1) // _GEMM_TILE) ** 2
    return min(1.0, blocks / sm_count)


def matmul_kernel(n: int, dtype_bytes: int = 4) -> KernelSpec:
    """The proxy's square matmul kernel ``A(nxn) @ B(nxn) = C``."""
    if n <= 0:
        raise ValueError("matrix dimension must be positive")
    if dtype_bytes <= 0:
        raise ValueError("dtype_bytes must be positive")
    return KernelSpec(
        name=f"sgemm_n{n}",
        flops=2.0 * n**3,
        bytes_accessed=3.0 * n * n * dtype_bytes,
        efficiency=matmul_efficiency(n),
        sm_fraction=matmul_sm_fraction(n),
        meta={"matrix_size": n, "dtype_bytes": dtype_bytes},
    )
