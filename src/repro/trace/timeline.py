"""Timeline analysis: device idle gaps and utilization from traces.

Slack hurts by *uncovering* idle gaps the GPU's work queue normally
hides. This module extracts exactly that quantity from a trace: the
gaps between consecutive device activities (kernels + memcpys), their
distribution, and a windowed utilization series — the evidence one
reads off an NSys timeline when diagnosing a starved GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .container import Trace
from .events import EventKind

__all__ = [
    "GapAnalysis",
    "device_gaps",
    "device_gaps_reference",
    "utilization_series",
    "utilization_series_reference",
]


@dataclass(frozen=True)
class GapAnalysis:
    """Summary of the idle gaps between device activities."""

    gaps: Tuple[float, ...]
    busy_time: float
    span: float

    @property
    def count(self) -> int:
        """Number of inter-activity gaps."""
        return len(self.gaps)

    @property
    def total_gap_time(self) -> float:
        """Summed idle-gap time."""
        return float(sum(self.gaps))

    @property
    def mean_gap(self) -> float:
        """Mean gap length (0 if there are none)."""
        return self.total_gap_time / self.count if self.gaps else 0.0

    @property
    def max_gap(self) -> float:
        """Longest single gap."""
        return max(self.gaps) if self.gaps else 0.0

    @property
    def utilization(self) -> float:
        """Device-busy fraction over the trace span."""
        return self.busy_time / self.span if self.span > 0 else 0.0

    def gaps_exceeding(self, threshold_s: float) -> int:
        """Gaps longer than ``threshold_s`` (starvation candidates)."""
        if threshold_s < 0:
            raise ValueError("threshold_s must be non-negative")
        return sum(1 for g in self.gaps if g > threshold_s)


def device_gaps(trace: Trace, min_gap_s: float = 0.0) -> GapAnalysis:
    """Extract the idle gaps between consecutive device activities.

    Device activity = kernel executions plus memcpys. Gaps shorter
    than ``min_gap_s`` are ignored (sub-resolution turnaround).

    Vectorized: in the sorted interval-merge, the running ``cur_end``
    equals the running maximum of the end times, so merged-run breaks
    fall exactly where ``start[i] > max(end[:i])``. Gap values and the
    per-run busy parts are computed as column operations; the busy sum
    is accumulated in run order, bit-identical to the scalar reference
    (:func:`device_gaps_reference`).
    """
    if min_gap_s < 0:
        raise ValueError("min_gap_s must be non-negative")
    device = trace.of_kinds(EventKind.KERNEL, EventKind.MEMCPY)
    if len(device) == 0:
        raise ValueError("trace has no device activity")
    starts = device.starts()
    runmax = np.maximum.accumulate(device.ends())
    break_at = np.flatnonzero(starts[1:] > runmax[:-1]) + 1
    gap_vals = starts[break_at] - runmax[break_at - 1]
    gaps = tuple(float(g) for g in gap_vals[gap_vals > min_gap_s])
    firsts = np.concatenate(([0], break_at))
    lasts = np.concatenate((break_at - 1, [starts.size - 1]))
    busy = 0.0
    for part in (runmax[lasts] - starts[firsts]).tolist():
        busy += part
    return GapAnalysis(gaps=gaps, busy_time=busy, span=device.span)


def device_gaps_reference(trace: Trace, min_gap_s: float = 0.0) -> GapAnalysis:
    """Scalar reference for :func:`device_gaps` (parity tests/bench)."""
    if min_gap_s < 0:
        raise ValueError("min_gap_s must be non-negative")
    device = trace.filter(
        lambda e: e.kind in (EventKind.KERNEL, EventKind.MEMCPY)
    )
    if len(device) == 0:
        raise ValueError("trace has no device activity")
    gaps: List[float] = []
    busy = 0.0
    cur_start, cur_end = device[0].start, device[0].end
    for e in list(device)[1:]:
        if e.start > cur_end:
            gap = e.start - cur_end
            if gap > min_gap_s:
                gaps.append(gap)
            busy += cur_end - cur_start
            cur_start, cur_end = e.start, e.end
        else:
            cur_end = max(cur_end, e.end)
    busy += cur_end - cur_start
    return GapAnalysis(gaps=tuple(gaps), busy_time=busy, span=device.span)


def utilization_series(
    trace: Trace, window_s: float, kind: Optional[EventKind] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Windowed device utilization over the trace.

    Returns ``(window_centres, busy_fraction)``. ``kind`` restricts to
    one activity type (e.g. only kernels).

    Vectorized: each event's window overlaps are expanded into one
    flat (event, window) contribution array and accumulated with
    ``np.add.at`` (unbuffered, applied in array order), so every float
    lands in ``busy`` through the same operations in the same order as
    the scalar reference (:func:`utilization_series_reference`).
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if kind is None:
        selected = trace.of_kinds(EventKind.KERNEL, EventKind.MEMCPY)
    else:
        selected = trace.of_kinds(kind)
    if len(selected) == 0:
        raise ValueError("no matching activity in trace")
    start, end = selected.start, selected.end
    n_windows = max(1, int(np.ceil((end - start) / window_s)))
    ev_start = selected.starts()
    ev_end = selected.ends()
    first = ((ev_start - start) / window_s).astype(np.int64)
    last = np.minimum(
        (ev_end - start) / window_s, float(n_windows - 1)
    ).astype(np.int64)
    counts = np.maximum(last - first + 1, 0)
    total = int(counts.sum())
    busy = np.zeros(n_windows)
    if total:
        # Flat (event, window) expansion: for each event, the window
        # indices first..last, concatenated in event order — the exact
        # visit order of the scalar nested loop.
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        w = np.repeat(first, counts) + offsets
        w_start = start + w * window_s
        w_end = w_start + window_s
        contrib = np.maximum(
            0.0,
            np.minimum(np.repeat(ev_end, counts), w_end)
            - np.maximum(np.repeat(ev_start, counts), w_start),
        )
        np.add.at(busy, w, contrib)
    centres = start + (np.arange(n_windows) + 0.5) * window_s
    return centres, np.minimum(1.0, busy / window_s)


def utilization_series_reference(
    trace: Trace, window_s: float, kind: Optional[EventKind] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar reference for :func:`utilization_series` (parity tests)."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    selected = trace.filter(
        lambda e: e.kind in (EventKind.KERNEL, EventKind.MEMCPY)
        if kind is None
        else e.kind is kind
    )
    if len(selected) == 0:
        raise ValueError("no matching activity in trace")
    start, end = selected.start, selected.end
    n_windows = max(1, int(np.ceil((end - start) / window_s)))
    busy = np.zeros(n_windows)
    for e in selected:
        first = int((e.start - start) / window_s)
        last = int(min((e.end - start) / window_s, n_windows - 1))
        for w in range(first, last + 1):
            w_start = start + w * window_s
            w_end = w_start + window_s
            busy[w] += max(0.0, min(e.end, w_end) - max(e.start, w_start))
    centres = start + (np.arange(n_windows) + 0.5) * window_s
    return centres, np.minimum(1.0, busy / window_s)
