"""The slack proxy application and its response surface.

Implements the paper's Section III-C proxy (synchronous matmul loop
with per-call slack injection and OpenMP-style thread parallelism),
the Section IV-B sweeps, and the interpolating response surface the
prediction model queries.
"""

from .calibration import (
    ITERATION_CEILING,
    ITERATION_FLOOR,
    KernelCalibration,
    TARGET_COMPUTE_SECONDS,
    calibrate_iterations,
    calibrate_matrix_size,
    time_single_kernel,
)
from .fastforward import FastForwardInfo
from .options import (
    ShardingUnsupportedError,
    SweepOptions,
    UNSET,
    resolve_options,
)
from .quantize import (
    dedupe_slacks,
    same_slack,
    slack_bucket,
    slack_tolerance,
    snap_slack,
)
from .matmul import (
    CUDA_CALLS_PER_ITERATION,
    ProxyConfig,
    ProxyResult,
    run_proxy,
)
from .response import SlackResponseSurface
from .sweep import (
    PAPER_MATRIX_SIZES,
    PAPER_SLACK_VALUES_S,
    PAPER_THREAD_COUNTS,
    SweepPoint,
    SweepResult,
    SweepTiming,
    assemble_sweep_result,
    grid_series,
    plan_grid_tasks,
    run_slack_sweep,
)

__all__ = [
    "ProxyConfig",
    "ProxyResult",
    "FastForwardInfo",
    "run_proxy",
    "CUDA_CALLS_PER_ITERATION",
    "calibrate_iterations",
    "calibrate_matrix_size",
    "time_single_kernel",
    "KernelCalibration",
    "TARGET_COMPUTE_SECONDS",
    "ITERATION_FLOOR",
    "ITERATION_CEILING",
    "run_slack_sweep",
    "plan_grid_tasks",
    "grid_series",
    "assemble_sweep_result",
    "SweepOptions",
    "ShardingUnsupportedError",
    "UNSET",
    "resolve_options",
    "slack_bucket",
    "slack_tolerance",
    "same_slack",
    "snap_slack",
    "dedupe_slacks",
    "SweepPoint",
    "SweepResult",
    "SweepTiming",
    "PAPER_MATRIX_SIZES",
    "PAPER_SLACK_VALUES_S",
    "PAPER_THREAD_COUNTS",
    "SlackResponseSurface",
]
