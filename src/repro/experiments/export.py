"""Export experiment results to Markdown.

Turns :class:`ExperimentResult` artifacts into the GitHub-flavoured
tables EXPERIMENTS.md is built from, so a full reproduction run can
regenerate its own report (``rowscale-cdi all --output report.md``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from .report import ExperimentResult, Series, Table, fmt

__all__ = ["table_to_markdown", "series_to_markdown", "results_to_markdown",
           "write_markdown_report"]


def table_to_markdown(table: Table) -> str:
    """One table as a GFM pipe table with its notes."""
    lines = [f"**{table.title}**", ""]
    lines.append("| " + " | ".join(table.headers) + " |")
    lines.append("|" + "|".join("---" for _ in table.headers) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    for note in table.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def series_to_markdown(series: Series) -> str:
    """One figure's data as a GFM pipe table (series x x-values)."""
    lines = [f"**{series.title}**", "",
             f"*x = {series.x_label}; y = {series.y_label}*", ""]
    lines.append("| series | " + " | ".join(fmt(x) for x in series.x) + " |")
    lines.append("|" + "|".join("---" for _ in range(len(series.x) + 1)) + "|")
    for label, ys in series.lines.items():
        cells = [fmt(y) if y is not None else "–" for y in ys]
        lines.append(f"| {label} | " + " | ".join(cells) + " |")
    for note in series.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def results_to_markdown(
    results: Iterable[ExperimentResult], title: str = "Reproduction report"
) -> str:
    """A full Markdown report over many experiment results."""
    parts: List[str] = [f"# {title}", ""]
    for result in results:
        parts.append(f"## {result.experiment_id}")
        parts.append("")
        for table in result.tables:
            parts.append(table_to_markdown(table))
            parts.append("")
        for series in result.series:
            parts.append(series_to_markdown(series))
            parts.append("")
        for note in result.notes:
            parts.append(f"> **NOTE:** {note}")
            parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def write_markdown_report(
    results: Iterable[ExperimentResult],
    path: Union[str, Path],
    title: str = "Reproduction report",
) -> Path:
    """Write the Markdown report to ``path`` and return it."""
    path = Path(path)
    path.write_text(results_to_markdown(results, title=title))
    return path
