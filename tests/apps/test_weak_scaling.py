"""Tests for the weak-scaling projection from the strong-scaling unit."""

import pytest

from repro.apps.lammps import (
    BasicUnit,
    LammpsScalingModel,
    find_basic_unit,
    project_weak_scaling,
)


class TestFindBasicUnit:
    def test_box120_wants_the_whole_cpu_complement(self):
        # The paper's conclusion: LAMMPS at production sizes benefits
        # from far more cores per GPU than the node's 12.
        unit = find_basic_unit(120)
        assert unit.cores > 12
        assert unit.cores_per_gpu == unit.cores

    def test_small_box_wants_few_cores(self):
        unit = find_basic_unit(20)
        assert unit.cores <= 4

    def test_unit_is_optimal_among_candidates(self):
        model = LammpsScalingModel()
        unit = find_basic_unit(120, model=model)
        from repro.apps.lammps import LJParams

        candidates = [(1, 1), (8, 1), (8, 6), (24, 2)]
        best_t = min(
            model.runtime(LJParams(120), p, t) for p, t in candidates
        )
        assert unit.runtime_s <= best_t + 1e-9


class TestProjectWeakScaling:
    @pytest.fixture(scope="class")
    def unit(self):
        return find_basic_unit(120)

    def test_cdi_faster_at_every_scale(self, unit):
        for p in project_weak_scaling(unit):
            assert p.cdi_advantage > 1.0

    def test_atoms_grow_with_gpus(self, unit):
        projections = project_weak_scaling(unit, gpu_counts=(1, 4, 16))
        atoms = [p.total_atoms for p in projections]
        assert atoms[1] == 4 * atoms[0]
        assert atoms[2] == 16 * atoms[0]

    def test_traditional_cores_capped_by_node_shape(self, unit):
        projections = project_weak_scaling(
            unit, gpu_counts=(4,), cores_per_node=48, gpus_per_node=4
        )
        assert projections[0].traditional_cores == 12 * 4

    def test_slack_grows_with_deployment_scale(self, unit):
        projections = project_weak_scaling(unit, gpu_counts=(1, 64))
        assert projections[-1].slack_s >= projections[0].slack_s

    def test_slack_penalty_inflates_cdi_runtime(self, unit):
        no_pen = project_weak_scaling(unit, gpu_counts=(16,))[0]
        with_pen = project_weak_scaling(
            unit, gpu_counts=(16,), slack_penalty_per_second=1e4
        )[0]
        assert with_pen.cdi_runtime_s > no_pen.cdi_runtime_s
        # At realistic (tiny) penalties the advantage persists.
        assert with_pen.cdi_advantage > 1.0

    def test_validation(self, unit):
        with pytest.raises(ValueError):
            project_weak_scaling(unit, gpu_counts=(0,))
        with pytest.raises(ValueError):
            project_weak_scaling(unit, slack_penalty_per_second=-1)
