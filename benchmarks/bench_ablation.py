"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one modelling decision and checks the paper's
qualitative conclusions depend on it the way the analysis claims:

* **Equation 1 on/off** — without removing the direct delay, even
  slack-tolerant configurations look catastrophically penalized.
* **Idle-ramp cap** — the saturation constant bounds the starvation
  cost; an uncapped ramp would make 2^15 slack-sensitive at 1 s,
  contradicting the paper's observation.
* **Blocking vs asynchronous launches** — the paper's synchronous
  (pessimistic) proxy exposes more slack than an async pipeline.
* **Phase-barrier vs free-running threads** — barrier semantics give
  the conservative 1/T tolerance scaling; free-running threads hide
  more (the default, matching the paper's <1% multi-thread headline).
* **Lower vs upper binning** — quantifies the pessimism gap of the
  bracketing in Table IV.
"""

import pytest

from repro.des import Environment
from repro.gpusim import CudaRuntime, matmul_kernel
from repro.hw import GPUSpec
from repro.model import CDIProfiler
from repro.network import SlackModel
from repro.proxy import CUDA_CALLS_PER_ITERATION, ProxyConfig, run_proxy
from repro.trace import CopyKind


def _loop(env, rt, n, iters, blocking=True):
    nbytes = n * n * 4
    kernel = matmul_kernel(n)

    def host():
        t0 = env.now
        for _ in range(iters):
            yield from rt.memcpy(nbytes, CopyKind.H2D)
            yield from rt.memcpy(nbytes, CopyKind.H2D)
            op = yield from rt.launch(kernel, blocking=blocking)
            yield from rt.memcpy(nbytes, CopyKind.D2H)
            yield from rt.synchronize()
        return env.now - t0

    proc = env.process(host())
    env.run()
    return proc.value


def _run(slack_s, n=8192, iters=10, blocking=True, gpu=None):
    env = Environment()
    rt = CudaRuntime(env, gpu=gpu or GPUSpec(), slack=SlackModel(slack_s))
    wall = _loop(env, rt, n, iters, blocking)
    return wall, rt.injector.total_injected_s


class TestEquation1Ablation:
    def test_without_correction_every_config_looks_intolerant(self, benchmark):
        def measure():
            base, _ = _run(0.0)
            wall, injected = _run(10e-3)
            return {
                "raw_ratio": wall / base,
                "corrected_ratio": (wall - injected) / base,
            }

        result = benchmark.pedantic(measure, rounds=1, iterations=1)
        # Raw ratio conflates the admissible direct delay with
        # starvation; Eq. 1 isolates the ~9% residual.
        assert result["raw_ratio"] > result["corrected_ratio"] + 0.3
        assert 1.05 < result["corrected_ratio"] < 1.15
        print(f"\nEq.1 ablation: raw {result['raw_ratio']:.3f}x vs "
              f"corrected {result['corrected_ratio']:.3f}x")


class TestIdleRampCapAblation:
    def test_uncapped_ramp_breaks_2_15_immunity(self, benchmark):
        def measure():
            out = {}
            for label, cap in (("capped", 25e-3), ("uncapped", 1e9)):
                gpu = GPUSpec(idle_ramp_cap_s=cap)
                base, _ = _run(0.0, n=2**15, iters=3, gpu=gpu)
                wall, injected = _run(1.0, n=2**15, iters=3, gpu=gpu)
                out[label] = (wall - injected) / base
            return out

        result = benchmark.pedantic(measure, rounds=1, iterations=1)
        # Paper: no slack value up to 1 s affects 2^15. The cap is the
        # mechanism: uncapped, a 1 s gap would cost ~0.9 s per kernel.
        assert result["capped"] < 1.01
        assert result["uncapped"] > 1.2
        print(f"\nidle-ramp cap ablation at 2^15 / 1 s slack: "
              f"capped {result['capped']:.4f}x vs "
              f"uncapped {result['uncapped']:.3f}x")


class TestSynchronousLaunchAblation:
    def test_async_hides_launch_slack(self, benchmark):
        def measure():
            out = {}
            for label, blocking in (("blocking", True), ("async", False)):
                base, _ = _run(0.0, n=8192, iters=10, blocking=blocking)
                wall, injected = _run(10e-3, n=8192, iters=10,
                                      blocking=blocking)
                out[label] = (wall - injected) / base
            return out

        result = benchmark.pedantic(measure, rounds=1, iterations=1)
        # With async launches, the post-launch slack overlaps the
        # kernel: the corrected ratio drops below the blocking case
        # (the paper's pessimistic-case rationale).
        assert result["async"] < result["blocking"]
        print(f"\nlaunch-mode ablation at 2^13 / 10 ms: "
              f"blocking {result['blocking']:.4f}x vs "
              f"async {result['async']:.4f}x")


class TestThreadSemanticsAblation:
    def test_barrier_vs_free_running(self, benchmark):
        def measure():
            out = {}
            for label, barrier in (("barrier", True), ("free", False)):
                cfg = ProxyConfig(matrix_size=512, threads=8, iterations=25,
                                  phase_barrier=barrier)
                base = run_proxy(cfg)
                slow = run_proxy(cfg, SlackModel(100e-6))
                out[label] = max(
                    0.0,
                    slow.corrected_runtime_s / base.loop_runtime_s - 1.0,
                )
            return out

        result = benchmark.pedantic(measure, rounds=1, iterations=1)
        # Barrier semantics expose one slack per phase (conservative
        # ~1/T scaling); free-running threads hide it completely.
        assert result["free"] <= result["barrier"]
        assert result["barrier"] > 0.02
        print(f"\nthread-semantics ablation at 2^9 / 100 us / 8 threads: "
              f"barrier penalty {result['barrier']:.4f} vs "
              f"free-running {result['free']:.4f}")


class TestBinningPessimismAblation:
    def test_bracket_gap_quantified(self, benchmark, ctx):
        profiler = CDIProfiler(ctx.surface())
        profile = ctx.lammps_profile()

        def measure():
            p = profiler.predict(profile, 10e-3)
            return {"lower": p.lower, "upper": p.upper}

        result = benchmark.pedantic(measure, rounds=1, iterations=1)
        # The pessimism gap at large slack spans more than an order of
        # magnitude — the paper's 'severely pessimistic' upper bound.
        assert result["upper"] > 5 * result["lower"]
        print(f"\nbinning ablation (LAMMPS @ 10 ms): lower "
              f"{result['lower']:.4f} vs upper {result['upper']:.4f}")


class TestOccupancyAblation:
    def test_sm_co_scheduling_shortens_small_kernel_bursts(self, benchmark):
        """SM-occupancy co-scheduling: 6 small SGEMMs co-resident on
        the device finish in ~1 wave instead of 6 serial executions —
        the queue-feeding mechanism slack tolerance rides on."""
        from repro.des import Environment
        from repro.gpusim import CudaRuntime, matmul_kernel

        def burst(concurrent):
            env = Environment()
            rt = CudaRuntime(env, concurrent_kernels=concurrent)
            k = matmul_kernel(512)
            streams = [rt.create_stream() for _ in range(6)]

            def host():
                t0 = env.now
                ops = []
                for s in streams:
                    op = yield from rt.launch(k, stream=s)
                    ops.append(op)
                for op in ops:
                    if not op.completion.processed:
                        yield op.completion
                return env.now - t0

            proc = env.process(host())
            env.run()
            return proc.value

        result = benchmark.pedantic(
            lambda: {"serial": burst(False), "concurrent": burst(True)},
            rounds=1, iterations=1,
        )
        assert result["concurrent"] < 0.4 * result["serial"]
        print(f"\noccupancy ablation: 6x sgemm_512 burst "
              f"serial {result['serial'] * 1e6:.0f} us vs "
              f"co-scheduled {result['concurrent'] * 1e6:.0f} us")
