"""Unit tests for the cyclic Barrier primitive."""

import pytest

from repro.des import Barrier, Environment


class TestBarrier:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Barrier(env, parties=0)

    def test_single_party_never_blocks(self):
        env = Environment()
        barrier = Barrier(env, parties=1)
        times = []

        def proc(env):
            yield env.timeout(5.0)
            yield barrier.wait()
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [5.0]

    def test_all_parties_released_together(self):
        env = Environment()
        barrier = Barrier(env, parties=3)
        releases = []

        def proc(env, delay):
            yield env.timeout(delay)
            yield barrier.wait()
            releases.append((env.now, delay))

        for d in (1.0, 5.0, 3.0):
            env.process(proc(env, d))
        env.run()
        # Everyone released at the last arrival (t=5).
        assert [t for t, _ in releases] == [5.0, 5.0, 5.0]
        assert barrier.cycles_completed == 1

    def test_cyclic_reuse(self):
        env = Environment()
        barrier = Barrier(env, parties=2)
        log = []

        def proc(env, name, delays):
            for d in delays:
                yield env.timeout(d)
                cycle = yield barrier.wait()
                log.append((name, env.now, cycle))

        env.process(proc(env, "a", [1.0, 1.0]))
        env.process(proc(env, "b", [2.0, 2.0]))
        env.run()
        assert barrier.cycles_completed == 2
        # First cycle completes at t=2, second at t=4.
        cycle1 = [entry for entry in log if entry[2] == 1]
        cycle2 = [entry for entry in log if entry[2] == 2]
        assert all(t == 2.0 for _, t, _ in cycle1)
        assert all(t == 4.0 for _, t, _ in cycle2)

    def test_waiting_count(self):
        env = Environment()
        barrier = Barrier(env, parties=3)
        observed = []

        def waiter(env):
            yield barrier.wait()

        def observer(env):
            yield env.timeout(1.0)
            observed.append(barrier.waiting)
            env.process(waiter(env))  # third party
            env.process(waiter(env))  # overflow into next cycle? no: 2 waiting + 1 = release
            yield env.timeout(1.0)

        env.process(waiter(env))
        env.process(waiter(env))
        env.process(observer(env))
        env.run()
        assert observed == [2]
