"""RunReport: collection, serialization, golden schema, rendering."""

import json
from pathlib import Path

import pytest

from repro.obs import (
    RUN_REPORT_SCHEMA_VERSION,
    MetricsRegistry,
    RunReport,
    collecting,
)

GOLDEN = Path(__file__).parent / "golden_runreport.json"

#: The stable document contract: top-level keys and histogram-doc keys.
TOP_LEVEL_KEYS = {
    "schema", "kind", "generated_at", "python", "repro_version",
    "meta", "metrics",
}
HISTOGRAM_KEYS = {"count", "sum", "mean", "min", "p50", "p90", "p99", "max"}


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("des.events_dispatched").inc(418)
    reg.gauge("executor.workers").set(4)
    h = reg.histogram("executor.point_wall_s")
    for v in (0.001, 0.002, 0.004):
        h.observe(v)
    return reg


def test_collect_snapshot():
    report = RunReport.collect(
        _sample_registry(), kind="sweep", meta={"iterations": 25}
    )
    assert report.kind == "sweep"
    assert report.meta == {"iterations": 25}
    assert report.sections() == ["des", "executor"]
    assert report.value("des.events_dispatched") == 418
    assert report.value("executor.point_wall_s")["count"] == 3
    with pytest.raises(KeyError):
        report.value("des.nope")
    # Provenance is stamped.
    assert report.generated_at.endswith("Z")
    assert report.python and report.repro_version


def test_json_roundtrip(tmp_path):
    report = RunReport.collect(_sample_registry(), kind="sweep")
    path = report.to_json(tmp_path / "report.json")
    loaded = RunReport.from_json(path)
    assert loaded == report
    assert loaded.to_doc() == report.to_doc()


def test_schema_mismatch_rejected():
    doc = RunReport.collect(_sample_registry()).to_doc()
    doc["schema"] = RUN_REPORT_SCHEMA_VERSION + 1
    with pytest.raises(ValueError):
        RunReport.from_doc(doc)


# -- golden file -------------------------------------------------------------

def test_golden_file_loads_and_roundtrips_byte_identical():
    """The checked-in golden document is stable under load -> dump."""
    text = GOLDEN.read_text()
    report = RunReport.from_json(GOLDEN)
    assert (
        json.dumps(report.to_doc(), indent=1, sort_keys=True) + "\n" == text
    )
    assert report.kind == "sweep"
    assert report.value("des.events_scheduled") == 418.0


def _assert_conforms(doc: dict) -> None:
    """The structural schema every RunReport document must satisfy."""
    assert set(doc) == TOP_LEVEL_KEYS
    assert doc["schema"] == RUN_REPORT_SCHEMA_VERSION
    assert isinstance(doc["kind"], str)
    assert isinstance(doc["meta"], dict)
    assert isinstance(doc["metrics"], dict)
    for section, values in doc["metrics"].items():
        assert isinstance(section, str)
        assert isinstance(values, dict)
        for metric, value in values.items():
            assert isinstance(metric, str)
            if isinstance(value, dict):  # histogram summary
                if value.get("count", 0) == 0:
                    assert set(value) == {"count", "sum"}
                else:
                    assert set(value) == HISTOGRAM_KEYS
            else:
                assert isinstance(value, (int, float))


def test_golden_schema():
    _assert_conforms(json.loads(GOLDEN.read_text()))


def test_live_sweep_report_matches_golden_schema(tmp_path):
    """A freshly collected sweep report obeys the same schema as the
    golden file and covers the DES, fabric, and cache layers."""
    from repro.parallel import PointCache
    from repro.proxy import run_slack_sweep

    with collecting():
        result = run_slack_sweep(
            matrix_sizes=[256], slack_values_s=[1e-5], threads=[1],
            iterations=3, cache=PointCache(tmp_path / "points"),
        )
    assert result.report is not None
    doc = result.report.to_doc()
    _assert_conforms(doc)
    for section in ("des", "gpu", "fabric", "cache", "executor", "sweep"):
        assert section in doc["metrics"], section


def test_render_smoke():
    report = RunReport.collect(
        _sample_registry(), kind="sweep", meta={"iterations": 25}
    )
    text = report.render()
    assert "RunReport kind=sweep" in text
    assert "meta: iterations = 25" in text
    assert "[des]" in text and "[executor]" in text
    assert "events_dispatched" in text
