"""Slack: the CDI-induced CPU-to-GPU communication latency.

The paper defines *slack* as the latency added to every CPU-GPU
interaction when the GPU moves off-node: NIC traversal on both ends
plus time-of-flight through the fabric (Figure 1). This module gives
slack a first-class representation:

* :class:`SlackModel` — produces the per-CUDA-call delay, either fixed
  (the paper's sleep-injection) or jittered (network noise studies);
* distance conversions — the paper's headline "100 us = 20 km of
  fibre" via the speed of light in glass;
* :func:`slack_budget` — compose a slack value from its physical
  components (NICs, switch hops, cable length).

Units are seconds and metres throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..des import quantize

__all__ = [
    "SPEED_OF_LIGHT_VACUUM_M_PER_S",
    "FIBRE_REFRACTIVE_INDEX",
    "SPEED_OF_LIGHT_FIBRE_M_PER_S",
    "fibre_distance_for_latency",
    "latency_for_fibre_distance",
    "SlackModel",
    "SlackComponents",
    "slack_budget",
    "US",
    "MS",
]

#: Speed of light in vacuum.
SPEED_OF_LIGHT_VACUUM_M_PER_S = 299_792_458.0

#: Typical refractive index of silica fibre (~1.468); the paper uses
#: the round figure that light covers 20 km of fibre in 100 us, i.e.
#: 2e8 m/s.
FIBRE_REFRACTIVE_INDEX = 1.4990

#: Propagation speed in fibre implied by the paper's 20 km / 100 us.
SPEED_OF_LIGHT_FIBRE_M_PER_S = SPEED_OF_LIGHT_VACUUM_M_PER_S / FIBRE_REFRACTIVE_INDEX

#: Convenience second-based unit constants.
US = 1e-6
MS = 1e-3


def fibre_distance_for_latency(latency_s: float) -> float:
    """Metres of fibre a signal covers in ``latency_s`` (one-way).

    >>> round(fibre_distance_for_latency(100e-6) / 1e3)  # the paper's 20 km
    20
    """
    if latency_s < 0:
        raise ValueError("latency_s must be non-negative")
    return latency_s * SPEED_OF_LIGHT_FIBRE_M_PER_S


def latency_for_fibre_distance(distance_m: float) -> float:
    """One-way time-of-flight through ``distance_m`` of fibre."""
    if distance_m < 0:
        raise ValueError("distance_m must be non-negative")
    return distance_m / SPEED_OF_LIGHT_FIBRE_M_PER_S


@dataclass(frozen=True)
class SlackComponents:
    """Physical breakdown of a slack value (one direction).

    Attributes
    ----------
    nic_s:
        Per-NIC traversal time; two NICs sit on a CDI path (host and
        chassis side).
    switch_hop_s / switch_hops:
        Per-hop fabric switch latency and hop count.
    cable_m:
        Fibre length between host and chassis.
    """

    nic_s: float = 0.5e-6
    switch_hop_s: float = 0.3e-6
    switch_hops: int = 2
    cable_m: float = 10.0

    def total(self) -> float:
        """One-way slack implied by the components."""
        return (
            2 * self.nic_s
            + self.switch_hops * self.switch_hop_s
            + latency_for_fibre_distance(self.cable_m)
        )


def slack_budget(
    target_slack_s: float, components: Optional[SlackComponents] = None
) -> float:
    """Cable length (m) available once fixed component costs are paid.

    Given a slack budget and the per-NIC/per-hop costs, how far apart
    may the CPU and the GPU chassis physically be? Returns 0 if the
    fixed costs already exceed the budget.
    """
    comp = components or SlackComponents(cable_m=0.0)
    fixed = 2 * comp.nic_s + comp.switch_hops * comp.switch_hop_s
    remaining = target_slack_s - fixed
    if remaining <= 0:
        return 0.0
    return fibre_distance_for_latency(remaining)


class SlackModel:
    """Produces the per-call slack delay injected into CUDA API calls.

    Parameters
    ----------
    slack_s:
        Mean one-way slack per call (the paper sweeps 1 us .. 10 ms).
    jitter_fraction:
        Relative standard deviation of log-normal jitter; 0 reproduces
        the paper's deterministic sleep insertion.
    rng:
        NumPy generator for jitter; required if ``jitter_fraction > 0``.
    """

    def __init__(
        self,
        slack_s: float,
        jitter_fraction: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if slack_s < 0:
            raise ValueError("slack_s must be non-negative")
        if jitter_fraction < 0:
            raise ValueError("jitter_fraction must be non-negative")
        self.slack_s = float(slack_s)
        # The deterministic per-call delay actually fed into the DES,
        # snapped to the dyadic tick grid (repro.des.timebase) so that
        # injected-slack totals accumulate exactly. slack_s itself
        # stays raw: it is the model parameter, used for analysis
        # (Equation 1 correction, distance conversion) and repr.
        self._delay_s = quantize(self.slack_s)
        self.jitter_fraction = float(jitter_fraction)
        if jitter_fraction > 0 and rng is None:
            rng = np.random.default_rng(0)
        self._rng = rng
        self.calls_delayed = 0
        self.total_injected_s = 0.0

    @classmethod
    def none(cls) -> "SlackModel":
        """The zero-slack baseline."""
        return cls(0.0)

    @classmethod
    def for_distance(cls, distance_m: float, **kwargs: float) -> "SlackModel":
        """A slack model whose mean is the fibre time-of-flight."""
        return cls(latency_for_fibre_distance(distance_m), **kwargs)

    @property
    def is_zero(self) -> bool:
        """Whether this model never injects delay."""
        return self.slack_s == 0.0 and self.jitter_fraction == 0.0

    def sample(self) -> float:
        """Draw the next per-call delay and account for it."""
        if self.slack_s == 0.0:
            return 0.0
        if self.jitter_fraction == 0.0:
            delay = self._delay_s
        else:
            # Log-normal keeps delays positive with the requested CV.
            cv = self.jitter_fraction
            sigma = np.sqrt(np.log(1.0 + cv * cv))
            mu = np.log(self.slack_s) - sigma * sigma / 2.0
            assert self._rng is not None
            delay = float(self._rng.lognormal(mean=mu, sigma=sigma))
        self.calls_delayed += 1
        self.total_injected_s += delay
        return delay

    def equivalent_distance_m(self) -> float:
        """Fibre distance whose one-way flight time equals the mean slack."""
        return fibre_distance_for_latency(self.slack_s)

    def __repr__(self) -> str:
        return (
            f"SlackModel(slack_s={self.slack_s:g}, "
            f"jitter_fraction={self.jitter_fraction:g})"
        )
