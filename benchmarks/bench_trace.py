"""Benchmark: the columnar trace store and vectorized model pipeline.

Three legs, all asserting bit-exact parity with the retained scalar
reference implementations before reporting a speedup:

* **record** — event recording throughput, columnar ``Tracer`` path
  vs. appending ``TraceEvent`` objects to the legacy scalar ``Trace``.
* **analysis** — the Figure 4/5 trace-analysis functions (duration
  profile, memcpy profile, gaps, utilization) on a real traced LAMMPS
  profile, columnar vs. a scalar-``Trace`` copy of the same events.
* **table4** — the full bin → Equation 3 → Equation 2 slack-grid
  prediction for both applications, vectorized ``predict_sweep`` on
  columnar traces vs. :func:`repro.model.reference.predict_sweep_reference`
  on scalar copies. This is the PR's acceptance path and must show at
  least a 5x speedup.

Results land in ``BENCH_trace.json`` at the repo root, next to
``BENCH_sweep.json`` (see docs/performance.md for methodology).
"""

import dataclasses
import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.model import CDIProfiler
from repro.model.reference import predict_sweep_reference
from repro.proxy import PAPER_SLACK_VALUES_S
from repro.trace import (
    EventKind,
    Trace,
    TraceEvent,
    Tracer,
    device_gaps,
    device_gaps_reference,
    kernel_duration_profile,
    memcpy_size_profile,
    utilization_series,
    utilization_series_reference,
)
from repro.des import Environment

#: Where the perf artifact lands (repo root, next to BENCH_sweep.json).
TRACE_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_trace.json"

#: Minimum acceptable vectorized-vs-scalar speedup on the table4 path.
TABLE4_SPEEDUP_FLOOR = 5.0

#: Sections accumulated by the tests and flushed at module teardown.
_SECTIONS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_artifact():
    yield
    if not _SECTIONS:
        return
    doc = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    doc.update(_SECTIONS)
    TRACE_ARTIFACT.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _best_of(fn, repeats=3):
    """Best wall time of ``repeats`` runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _scalar_copy(profile):
    """The same profile with its trace as a legacy scalar ``Trace``."""
    return dataclasses.replace(
        profile, trace=Trace(list(profile.trace), name=profile.trace.name)
    )


def test_bench_record_throughput():
    n = 50_000

    def record_columnar():
        tracer = Tracer(Environment(), name="bench")
        for i in range(n):
            tracer.record(
                EventKind.KERNEL, "k%d" % (i % 7), i * 1e-6, i * 1e-6 + 5e-7,
                stream=i % 4, thread=i % 8,
            )
        return tracer.trace

    def record_scalar():
        trace = Trace(name="bench")
        for i in range(n):
            trace.append(
                TraceEvent(
                    kind=EventKind.KERNEL, name="k%d" % (i % 7),
                    start=i * 1e-6, end=i * 1e-6 + 5e-7,
                    stream=i % 4, thread=i % 8,
                )
            )
        return trace

    col_s, columnar = _best_of(record_columnar)
    sca_s, scalar = _best_of(record_scalar)
    # The compatibility view must materialize the identical sequence.
    assert list(columnar) == list(scalar)
    _SECTIONS["record"] = {
        "events": n,
        "columnar_s": col_s,
        "scalar_s": sca_s,
        "columnar_events_per_sec": n / col_s,
        "scalar_events_per_sec": n / sca_s,
        "speedup": sca_s / col_s,
        "store": columnar.store.stats(),
    }


def test_bench_trace_analysis(ctx):
    profile = ctx.lammps_profile()
    scalar = _scalar_copy(profile)
    window = profile.runtime_s / 64

    def analyze(trace):
        return (
            kernel_duration_profile(trace, title="bench"),
            memcpy_size_profile(trace, title="bench"),
            trace.kernels().busy_time(),
            trace.memcpys().busy_time(),
            device_gaps(trace),
        )

    col_s, col_res = _best_of(lambda: analyze(profile.trace))
    sca_s, sca_res = _best_of(
        lambda: (
            kernel_duration_profile(scalar.trace, title="bench"),
            memcpy_size_profile(scalar.trace, title="bench"),
            scalar.trace.kernels().busy_time(),
            scalar.trace.memcpys().busy_time(),
            device_gaps_reference(scalar.trace),
        )
    )
    assert col_res == sca_res
    cu = utilization_series(profile.trace, window)
    su = utilization_series_reference(scalar.trace, window)
    assert (cu[0] == su[0]).all() and (cu[1] == su[1]).all()
    _SECTIONS["analysis"] = {
        "events": len(profile.trace),
        "columnar_s": col_s,
        "scalar_s": sca_s,
        "speedup": sca_s / col_s,
    }


def test_bench_table4_pipeline(ctx):
    profiler = CDIProfiler(ctx.surface())
    profiles = ctx.profiles()
    scalars = [_scalar_copy(p) for p in profiles]

    vec_s, vec_out = _best_of(
        lambda: [
            profiler.predict_sweep(p, PAPER_SLACK_VALUES_S) for p in profiles
        ]
    )
    ref_s, ref_out = _best_of(
        lambda: [
            predict_sweep_reference(profiler, p, PAPER_SLACK_VALUES_S)
            for p in scalars
        ]
    )
    # Bit-exact parity: every SlackPrediction field, every slack, both
    # apps — the vectorized pipeline is a pure reimplementation.
    for vec, ref in zip(vec_out, ref_out):
        assert vec == ref
    speedup = ref_s / vec_s
    _SECTIONS["table4"] = {
        "slack_values": len(PAPER_SLACK_VALUES_S),
        "apps": [p.name for p in profiles],
        "events": [len(p.trace) for p in profiles],
        "vectorized_s": vec_s,
        "scalar_reference_s": ref_s,
        "speedup": speedup,
        "speedup_floor": TABLE4_SPEEDUP_FLOOR,
    }
    assert speedup >= TABLE4_SPEEDUP_FLOOR, (
        f"table4 pipeline speedup {speedup:.1f}x below the "
        f"{TABLE4_SPEEDUP_FLOOR:.0f}x floor"
    )
