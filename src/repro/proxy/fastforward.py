"""Proxy-facing surface of the steady-state fast-forward engine.

The certification machinery — :class:`EpochMonitor`, the counter and
shape snapshots, the analytic extrapolation on the dyadic timebase —
was hoisted into :mod:`repro.des.fastforward` so the LAMMPS and
CosmoFlow application runs can reuse it. This module re-exports those
names unchanged (existing imports keep working) and keeps the one
piece that is genuinely proxy-specific: :func:`refusal_reason`, which
knows about :class:`~repro.proxy.matmul.ProxyConfig`'s steady-state
perturbation knobs (phase barriers, iteration spacing, staggered
thread launch).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..des.fastforward import (
    CONSECUTIVE_CERTS,
    EpochMonitor,
    Extrapolated,
    FastForwardInfo,
    MAX_WARMUP_EPOCHS,
    MIN_ITERATIONS,
    SegmentedEpochMonitor,
)
from ..network import SlackModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .matmul import ProxyConfig

__all__ = [
    "FastForwardInfo",
    "EpochMonitor",
    "SegmentedEpochMonitor",
    "Extrapolated",
    "refusal_reason",
    "MIN_ITERATIONS",
    "CONSECUTIVE_CERTS",
    "MAX_WARMUP_EPOCHS",
]


def refusal_reason(
    config: "ProxyConfig",
    slack: SlackModel,
    iterations: int,
    faults: Optional[object] = None,
) -> Optional[str]:
    """Why this run is ineligible for fast-forward (None = eligible).

    Everything here is a configuration whose periodicity the monitor
    either cannot certify (jitter breaks bit-identity) or should not
    try to (barriers and spacing/offset knobs exist precisely to
    perturb the steady state the paper's control experiments probe).
    """
    if faults is not None:
        # An active fault injector makes the run time-inhomogeneous:
        # fault windows open and close at absolute times, so no cycle
        # certificate can extend over the skipped interval. Refuse
        # outright rather than wasting boundary snapshots.
        return "faults-active"
    if type(slack) is not SlackModel:
        # Subclasses (e.g. the PreloadShim coverage model) may sample
        # stochastically; only the exact base model is certified.
        return "slack-model-subclass"
    if slack.jitter_fraction > 0:
        return "slack-jitter"
    if config.phase_barrier:
        return "phase-barrier"
    if config.iteration_spacing_s > 0:
        return "iteration-spacing"
    if config.thread_launch_offset_s > 0:
        return "thread-launch-offset"
    if iterations < MIN_ITERATIONS:
        return "too-few-iterations"
    return None
