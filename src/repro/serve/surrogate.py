"""The serving surrogate: vectorized penalty prediction with bounds.

:class:`SurrogateModel` answers the question the DES proxy answers —
what slack penalty does a ``(matrix_size, threads)`` workload pay at a
given slack? — in microseconds instead of seconds, by interpolating
cached sweep measurements with the surface's own log-linear rule and
attaching the cross-validated error bound of the region the query
fell in (:mod:`repro.model.surrogate`).

Two properties make it a *serving* component rather than a lookup
table:

* **Vectorized batches.** All series live in one packed coordinate
  system (per-series shifted log-slack grids), so a batch of queries
  across arbitrary series resolves with a single ``searchsorted`` and
  a handful of numpy gathers — no per-request Python. This is what
  the micro-batching :class:`~repro.serve.PenaltyService` rides to
  its throughput target.
* **A refusing domain.** The surrogate knows what it was fit on and
  declines everything else with a typed
  :class:`SurrogateDomainError` whose ``reason`` is recorded:
  unknown ``(matrix_size, threads)`` series, series too short to
  interpolate, negative slack, slack beyond the measured grid. A
  refused query is the signal for the service's cold path to measure
  the real point and :meth:`~SurrogateModel.observe` it back in.

Parity contract: at measured grid points (up to the shared slack
quantization tolerance) predictions equal
:meth:`repro.proxy.SlackResponseSurface.penalty` exactly, with bound
0. :func:`assert_parity` checks this; the serving benchmark runs it
before reporting any speedup.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..model.surrogate import (
    BOUND_SAFETY_FACTOR,
    PCHIP_AVAILABLE,
    SURROGATE_METHODS,
    TrainingSeries,
    crossval_bounds,
    extract_training_series,
)
from ..proxy.quantize import slack_bucket
from ..proxy.response import SlackResponseSurface
from ..proxy.sweep import SweepPoint, SweepResult

__all__ = [
    "REFUSAL_REASONS",
    "Prediction",
    "SurrogateDomainError",
    "SurrogateModel",
    "assert_parity",
]

#: Reason codes a :class:`SurrogateDomainError` can carry.
REFUSAL_REASONS = (
    "unknown-series",
    "degenerate-series",
    "negative-slack",
    "above-grid",
)

# Refusal reason codes as small ints for the vectorized path; 0 = ok.
_OK = 0
_UNKNOWN_SERIES = 1
_DEGENERATE_SERIES = 2
_NEGATIVE_SLACK = 3
_ABOVE_GRID = 4
_REASON_NAMES = {
    _UNKNOWN_SERIES: "unknown-series",
    _DEGENERATE_SERIES: "degenerate-series",
    _NEGATIVE_SLACK: "negative-slack",
    _ABOVE_GRID: "above-grid",
}

# Threads share the packed int64 series key with the matrix size;
# 16 bits is orders beyond any measured thread count.
_THREAD_BITS = 16


class SurrogateDomainError(LookupError):
    """A query the surrogate refuses to answer, and why.

    ``reason`` is one of :data:`REFUSAL_REASONS`; ``query`` is the
    ``(matrix_size, threads, slack_s)`` triple that was refused. The
    service's cold path catches exactly this error to decide a real
    DES measurement is warranted.
    """

    def __init__(
        self,
        reason: str,
        message: str,
        query: Tuple[int, int, float],
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.query = query


class Prediction(Tuple[float, float]):
    """A ``(penalty, bound)`` pair with named access."""

    __slots__ = ()

    def __new__(cls, penalty: float, bound: float) -> "Prediction":
        return super().__new__(cls, (penalty, bound))

    @property
    def penalty(self) -> float:
        return self[0]

    @property
    def bound(self) -> float:
        return self[1]


def _pack_key(matrix_size: int, threads: int) -> int:
    return (int(matrix_size) << _THREAD_BITS) | int(threads)


class SurrogateModel:
    """Bounded-error penalty surrogate over cached sweep points.

    Keyword-only construction from already-extracted training series;
    most callers use :meth:`fit` on a sweep, a surface, or raw points.

    ``method`` selects the interpolation rule: ``"loglinear"`` (the
    surface's own rule, exact parity at measured points — default) or
    ``"pchip"`` (monotone shape-preserving cubic in log-slack, scipy).
    When scipy is absent a requested ``"pchip"`` falls back to
    ``"loglinear"`` and the downgrade is recorded in :attr:`notes`.
    """

    def __init__(
        self,
        *,
        series: Iterable[TrainingSeries],
        method: str = "loglinear",
        safety: float = BOUND_SAFETY_FACTOR,
    ) -> None:
        if method not in SURROGATE_METHODS:
            raise ValueError(
                f"method must be one of {SURROGATE_METHODS}, got {method!r}"
            )
        self.notes: List[str] = []
        if method == "pchip" and not PCHIP_AVAILABLE:
            self.notes.append(
                "pchip requested but scipy is unavailable; "
                "falling back to loglinear"
            )
            method = "loglinear"
        self.method = method
        self.safety = safety
        #: Refusal counts by reason code, across predict/evaluate.
        self.refusals: Dict[str, int] = {r: 0 for r in REFUSAL_REASONS}
        #: Points folded in through :meth:`observe` (online refinement).
        self.observed_points = 0
        # Mutable training store: (size, threads) -> bucket -> (s, pen).
        self._points: Dict[Tuple[int, int], Dict[str, Tuple[float, float]]] = {}
        for ts in series:
            store = self._points.setdefault(
                (ts.matrix_size, ts.threads), {}
            )
            for s, p in zip(ts.slacks, ts.penalties):
                store.setdefault(slack_bucket(float(s)), (float(s), float(p)))
        self._pack()

    # -- construction ---------------------------------------------------------
    @classmethod
    def fit(
        cls,
        source: Union[SweepResult, SlackResponseSurface, Sequence[SweepPoint]],
        *,
        method: str = "loglinear",
        safety: float = BOUND_SAFETY_FACTOR,
    ) -> "SurrogateModel":
        """Fit a surrogate from measured sweep data."""
        return cls(
            series=extract_training_series(source, safety=safety),
            method=method,
            safety=safety,
        )

    def _pack(self) -> None:
        """Rebuild the packed vectorized-lookup arrays.

        Every series' ascending log-slack grid is shifted by
        ``series_index * span`` where ``span`` exceeds any single
        series' log-slack range, so one globally sorted array brackets
        a mixed-series batch with a single ``searchsorted`` — the
        shift guarantees a query tagged with its series index can only
        land inside that series' segment.
        """
        keys = sorted(self._points)
        self._keys = np.array(
            [_pack_key(n, t) for (n, t) in keys], dtype=np.int64
        )
        self._series_keys: List[Tuple[int, int]] = keys
        counts = [len(self._points[k]) for k in keys]
        self._counts = np.array(counts, dtype=np.int64)
        self._offsets = np.zeros(len(keys), dtype=np.int64)
        if keys:
            np.cumsum(counts[:-1], out=self._offsets[1:])
        total = int(self._counts.sum())
        self._slacks = np.empty(total)
        self._pen = np.empty(total)
        # Bound of the interval whose *left* endpoint is global index
        # g; the last point of each series holds 0.0 (no interval).
        self._ibound = np.zeros(total)
        self._pchips: Dict[int, object] = {}
        log_min, log_max = 0.0, 1.0
        all_logs: List[np.ndarray] = []
        for idx, key in enumerate(keys):
            pts = sorted(self._points[key].values())
            off = int(self._offsets[idx])
            cnt = len(pts)
            s = np.array([p[0] for p in pts])
            self._slacks[off:off + cnt] = s
            self._pen[off:off + cnt] = [p[1] for p in pts]
            if cnt >= 2:
                self._ibound[off:off + cnt - 1] = crossval_bounds(
                    s, self._pen[off:off + cnt], safety=self.safety
                )
            all_logs.append(np.log(s))
        if all_logs:
            flat = np.concatenate(all_logs)
            log_min, log_max = float(flat.min()), float(flat.max())
        # +10 keeps segments disjoint even after adding the query's
        # quantization tolerance on either side.
        self._span = (log_max - log_min) + 10.0
        self._shifted = np.empty(total)
        for idx in range(len(keys)):
            off = int(self._offsets[idx])
            cnt = int(self._counts[idx])
            self._shifted[off:off + cnt] = (
                np.log(self._slacks[off:off + cnt]) - log_min
                + idx * self._span
            )
        self._log_min = log_min
        if self.method == "pchip":
            for idx, key in enumerate(keys):
                off = int(self._offsets[idx])
                cnt = int(self._counts[idx])
                if cnt >= 2:
                    ts = TrainingSeries(
                        matrix_size=key[0],
                        threads=key[1],
                        slacks=self._slacks[off:off + cnt].copy(),
                        penalties=self._pen[off:off + cnt].copy(),
                        interval_bounds=self._ibound[off:off + cnt - 1].copy(),
                    )
                    fitted = ts.pchip()
                    if fitted is not None:
                        self._pchips[idx] = fitted

    # -- domain introspection -------------------------------------------------
    @property
    def series_keys(self) -> List[Tuple[int, int]]:
        """The fitted ``(matrix_size, threads)`` series, sorted."""
        return list(self._series_keys)

    def series_points(self, matrix_size: int, threads: int) -> int:
        """How many training points a series holds (0 = unknown)."""
        return len(self._points.get((matrix_size, threads), ()))

    def domain(self) -> Dict[str, object]:
        """Machine-readable description of the validated domain."""
        series = []
        for idx, (n, t) in enumerate(self._series_keys):
            off = int(self._offsets[idx])
            cnt = int(self._counts[idx])
            series.append(
                {
                    "matrix_size": n,
                    "threads": t,
                    "points": cnt,
                    "slack_min_s": float(self._slacks[off]) if cnt else None,
                    "slack_max_s": (
                        float(self._slacks[off + cnt - 1]) if cnt else None
                    ),
                    "worst_bound": (
                        float(self._ibound[off:off + cnt - 1].max())
                        if cnt >= 2
                        else None
                    ),
                }
            )
        return {
            "method": self.method,
            "safety": self.safety,
            "series": series,
            "refusal_reasons": list(REFUSAL_REASONS),
        }

    # -- evaluation -----------------------------------------------------------
    def evaluate(
        self,
        matrix_sizes: Sequence[int],
        threads: Sequence[int],
        slacks: Sequence[float],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized batch prediction.

        Returns ``(penalties, bounds, reasons)`` aligned with the
        inputs: ``reasons[i] == 0`` marks an answered query (penalty
        and cross-validated bound valid); a nonzero entry is a refusal
        code (see :data:`REFUSAL_REASONS` via :meth:`reason_name`)
        with ``penalties[i]`` and ``bounds[i]`` set to NaN. Refusals
        are tallied in :attr:`refusals` but never raise here — the
        scalar :meth:`predict` is the raising form.
        """
        n = np.asarray(matrix_sizes, dtype=np.int64)
        t = np.asarray(threads, dtype=np.int64)
        s = np.asarray(slacks, dtype=np.float64)
        if not (n.shape == t.shape == s.shape):
            raise ValueError("matrix_sizes, threads, slacks must align")
        m = n.shape[0]
        pen = np.full(m, np.nan)
        bound = np.full(m, np.nan)
        reason = np.zeros(m, dtype=np.int64)
        if m == 0:
            return pen, bound, reason

        # Series resolution: packed keys against the sorted key table.
        q_keys = (n << _THREAD_BITS) | t
        if len(self._keys):
            sidx = np.searchsorted(self._keys, q_keys)
            sidx = np.minimum(sidx, len(self._keys) - 1)
            known = self._keys[sidx] == q_keys
        else:
            sidx = np.zeros(m, dtype=np.int64)
            known = np.zeros(m, dtype=bool)
        reason[~known] = _UNKNOWN_SERIES

        degenerate = known & (self._counts[sidx] < 2)
        reason[degenerate] = _DEGENERATE_SERIES
        negative = (reason == _OK) & (s < 0)
        reason[negative] = _NEGATIVE_SLACK

        live = reason == _OK
        zero = live & (s == 0)
        pen[zero] = 0.0
        bound[zero] = 0.0
        live &= ~zero
        if not live.any():
            self._tally(reason)
            return pen, bound, reason

        off = self._offsets[sidx]
        cnt = self._counts[sidx]
        last = off + cnt - 1
        s_min = np.where(live, self._slacks[np.where(live, off, 0)], 1.0)
        s_max = np.where(live, self._slacks[np.where(live, last, 0)], 1.0)
        tol = 1e-12 + 1e-9 * np.abs(s)

        above = live & (s > s_max + tol)
        reason[above] = _ABOVE_GRID
        live &= ~above
        if not live.any():
            self._tally(reason)
            return pen, bound, reason

        # One global bracket over the shifted per-series coordinates.
        safe_s = np.where(live, np.maximum(s, 1e-300), 1.0)
        q = np.log(safe_s) - self._log_min + sidx * self._span
        pos = np.searchsorted(self._shifted, q)

        # Quantization snap: a query within tolerance of a measured
        # neighbour answers with that point exactly, bound 0 — the
        # shared near-miss rule of SweepResult.get and the surface.
        snapped = np.zeros(m, dtype=bool)
        for nb in (pos - 1, pos):
            g = np.clip(nb, 0, max(0, len(self._slacks) - 1))
            in_series = (g >= off) & (g <= last)
            hit = (
                live
                & ~snapped
                & in_series
                & (np.abs(self._slacks[g] - s) <= tol)
            )
            pen[hit] = self._pen[g[hit]]
            bound[hit] = 0.0
            snapped |= hit
        live &= ~snapped

        # Below the measured grid: the surface's linear ramp to zero,
        # certified only as far as the first interval's bound.
        below = live & (s < s_min)
        if below.any():
            o = off[below]
            pen[below] = self._pen[o] * s[below] / self._slacks[o]
            bound[below] = self._ibound[o]
            live &= ~below

        if live.any():
            hi = np.clip(pos, 0, max(0, len(self._slacks) - 1))
            lo = np.clip(pos - 1, 0, max(0, len(self._slacks) - 1))
            # Interior by construction: not below s_min, not above
            # s_max, not snapped — lo/hi bracket within the series.
            t_frac = (q[live] - self._shifted[lo[live]]) / (
                self._shifted[hi[live]] - self._shifted[lo[live]]
            )
            pen[live] = self._pen[lo[live]] + t_frac * (
                self._pen[hi[live]] - self._pen[lo[live]]
            )
            bound[live] = self._ibound[lo[live]]
            if self._pchips:
                self._apply_pchip(pen, live, sidx, s)

        self._tally(reason)
        return pen, bound, reason

    def _apply_pchip(
        self,
        pen: np.ndarray,
        live: np.ndarray,
        sidx: np.ndarray,
        s: np.ndarray,
    ) -> None:
        """Overwrite interior predictions with the per-series PCHIP fit."""
        for idx, fitted in self._pchips.items():
            sel = live & (sidx == idx)
            if sel.any():
                values = fitted(np.log(s[sel]))  # type: ignore[operator]
                # Outside the fit range PCHIP yields NaN; those were
                # already handled by ramp/clamp logic upstream.
                ok = ~np.isnan(values)
                target = np.flatnonzero(sel)[ok]
                pen[target] = np.maximum(0.0, values[ok])

    def _tally(self, reason: np.ndarray) -> None:
        for code, name in _REASON_NAMES.items():
            hits = int((reason == code).sum())
            if hits:
                self.refusals[name] += hits

    def reason_name(self, code: int) -> Optional[str]:
        """Human-readable refusal reason for a nonzero code."""
        return _REASON_NAMES.get(int(code))

    def predict(
        self, matrix_size: int, slack_s: float, threads: int = 1
    ) -> Prediction:
        """One prediction, raising on refusal.

        Argument order mirrors
        :meth:`~repro.proxy.SlackResponseSurface.penalty`. Returns a
        :class:`Prediction` ``(penalty, bound)``; raises
        :class:`SurrogateDomainError` for queries outside the
        validated domain.
        """
        pen, bound, reason = self.evaluate(
            [matrix_size], [threads], [slack_s]
        )
        if reason[0] != _OK:
            name = _REASON_NAMES[int(reason[0])]
            raise SurrogateDomainError(
                name,
                f"surrogate refuses ({name}): matrix_size={matrix_size} "
                f"threads={threads} slack_s={slack_s!r}",
                (matrix_size, threads, slack_s),
            )
        return Prediction(float(pen[0]), float(bound[0]))

    # -- online refinement ----------------------------------------------------
    def observe(
        self,
        matrix_size: int,
        threads: int,
        slack_s: float,
        penalty: float,
    ) -> None:
        """Fold one real measurement into the surrogate.

        The cold path calls this after a DES measurement so the next
        query for the same region is answered warm. The point joins
        its ``(matrix_size, threads)`` series (new series are
        created), bucket-deduplicated like any training point, and the
        packed arrays plus that series' cross-validated bounds are
        rebuilt.
        """
        if slack_s <= 0:
            return
        store = self._points.setdefault((matrix_size, threads), {})
        store.setdefault(
            slack_bucket(slack_s), (float(slack_s), max(0.0, float(penalty)))
        )
        self.observed_points += 1
        self._pack()


def assert_parity(
    model: SurrogateModel,
    surface: SlackResponseSurface,
    *,
    atol: float = 1e-12,
) -> int:
    """Assert surrogate/surface agreement at every measured point.

    Walks the surface's retained points and checks the surrogate
    prediction matches :meth:`SlackResponseSurface.penalty` within
    ``atol``, with bound 0 (measured points are exact). Returns the
    number of points checked. The serving benchmark runs this before
    reporting any throughput numbers.
    """
    checked = 0
    for p in surface.iter_points():
        if p.slack_s <= 0:
            continue
        expected = surface.penalty(p.matrix_size, p.slack_s, p.threads)
        got = model.predict(p.matrix_size, p.slack_s, p.threads)
        if abs(got.penalty - expected) > atol:
            raise AssertionError(
                f"parity violation at ({p.matrix_size}, {p.threads}, "
                f"{p.slack_s!r}): surrogate {got.penalty!r} "
                f"!= surface {expected!r}"
            )
        if got.bound != 0.0:
            raise AssertionError(
                f"measured point ({p.matrix_size}, {p.threads}, "
                f"{p.slack_s!r}) reported nonzero bound {got.bound!r}"
            )
        checked += 1
    return checked
