"""Tests for the parallel sweep execution engine.

The engine's contract: fanning a grid out over worker processes (or
resolving it from cache) changes nothing about the result — points,
ordering, and OOM skips are exactly equal to the sequential sweep.
"""

import os

import pytest

from repro.parallel import (
    ExecutorStats,
    PointTask,
    SweepExecutor,
    fork_available,
    measure_point,
    merge_stats,
)
from repro.proxy import ProxyConfig, run_slack_sweep

#: A compact grid exercising threads, sizes and slack decades.
QUICK_GRID = dict(
    matrix_sizes=(512, 2048),
    slack_values_s=(1e-6, 1e-4, 1e-2),
    threads=(1, 2),
    iterations=10,
)


class TestParallelEqualsSequential:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_slack_sweep(**QUICK_GRID, workers=1)

    def test_parallel_points_exactly_equal(self, sequential):
        parallel = run_slack_sweep(**QUICK_GRID, workers=2)
        assert parallel.points == sequential.points
        assert parallel.skipped == sequential.skipped

    def test_sequential_matches_legacy_grid_order(self, sequential):
        # threads-major, then matrix size, then ascending grid slack —
        # the historical sequential loop nesting.
        expected = [
            (t, n, s)
            for t in QUICK_GRID["threads"]
            for n in QUICK_GRID["matrix_sizes"]
            for s in QUICK_GRID["slack_values_s"]
        ]
        got = [(p.threads, p.matrix_size, p.slack_s) for p in sequential.points]
        assert got == expected

    def test_oom_skips_identical_in_both_modes(self):
        grid = dict(
            matrix_sizes=(2**15, 512),
            slack_values_s=(1e-6, 1e-4),
            threads=(4,),
            iterations=5,
        )
        sequential = run_slack_sweep(**grid, workers=1)
        parallel = run_slack_sweep(**grid, workers=2)
        assert sequential.skipped == parallel.skipped
        assert len(sequential.skipped) == 1
        assert sequential.skipped[0][:2] == (2**15, 4)
        assert parallel.points == sequential.points
        # The measurable 512 series is still fully present.
        assert {p.matrix_size for p in parallel.points} == {512}


class TestSweepExecutor:
    def test_default_worker_count_is_cpu_count(self):
        assert SweepExecutor().workers == (os.cpu_count() or 1)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)

    def test_preserves_task_order(self):
        config = ProxyConfig(matrix_size=512, threads=1, iterations=3)
        slacks = [0.0, 1e-2, 1e-6, 1e-4]  # deliberately unsorted
        tasks = [PointTask(config, s) for s in slacks]
        results = SweepExecutor(workers=1).run(tasks)
        expected = [measure_point(t) for t in tasks]
        assert [r.loop_runtime_s for r in results] == [
            e.loop_runtime_s for e in expected
        ]

    def test_stats_populated(self):
        config = ProxyConfig(matrix_size=512, threads=1, iterations=3)
        ex = SweepExecutor(workers=1)
        ex.run([PointTask(config, 0.0), PointTask(config, 1e-4)])
        stats = ex.stats
        assert isinstance(stats, ExecutorStats)
        assert stats.tasks == 2
        assert stats.measured == 2
        assert stats.cached == 0
        assert stats.mode == "inline"
        assert stats.workers == 1
        assert stats.wall_s > 0
        assert stats.points_per_sec > 0

    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    def test_pool_mode_reports_process(self):
        config = ProxyConfig(matrix_size=512, threads=1, iterations=3)
        tasks = [PointTask(config, s) for s in (0.0, 1e-6, 1e-4, 1e-2)]
        ex = SweepExecutor(workers=2)
        ex.run(tasks)
        assert ex.stats.mode == "process"
        assert ex.stats.workers == 2


class TestSweepTiming:
    def test_timing_attached_to_sweep_result(self):
        result = run_slack_sweep(
            matrix_sizes=(512,),
            slack_values_s=(1e-4,),
            threads=(1,),
            iterations=3,
            workers=1,
        )
        t = result.timing
        assert t is not None
        assert t.grid_points == 2  # baseline + one slack point
        assert t.measured == 2
        assert t.mode == "inline"
        assert t.wall_s > 0
        assert t.point_seconds > 0
        assert t.points_per_sec == pytest.approx(2 / t.wall_s)
        doc = t.to_doc()
        assert doc["grid_points"] == 2
        # Sequential runs must not report a pseudo-speedup: the ratio
        # of the inline path against itself is meaningless, so both
        # the property and the doc emit None (JSON null).
        assert t.speedup_vs_sequential is None
        assert doc["speedup_vs_sequential"] is None

    def test_timing_excluded_from_equality(self):
        a = run_slack_sweep(
            matrix_sizes=(512,), slack_values_s=(1e-4,), threads=(1,),
            iterations=3,
        )
        b = run_slack_sweep(
            matrix_sizes=(512,), slack_values_s=(1e-4,), threads=(1,),
            iterations=3,
        )
        # Wall times differ between runs, but timing is not part of a
        # result's identity.
        assert a == b


class TestMergeStats:
    def test_merges_additive_fields(self):
        a = ExecutorStats(
            wall_s=1.0, tasks=4, measured=3, cached=1, workers=1,
            mode="inline", point_seconds=0.9,
        )
        b = ExecutorStats(
            wall_s=2.0, tasks=6, measured=6, cached=0, workers=4,
            mode="process", point_seconds=5.0,
        )
        merged = merge_stats([a, b])
        assert merged.wall_s == 3.0
        assert merged.tasks == 10
        assert merged.measured == 9
        assert merged.cached == 1
        assert merged.workers == 4
        assert merged.mode == "process"
        assert merged.point_seconds == 5.9

    def test_empty_and_none_entries(self):
        assert merge_stats([]) is None
        assert merge_stats([None, None]) is None
        only = ExecutorStats(
            wall_s=1.0, tasks=2, measured=2, cached=0, workers=1,
            mode="inline", point_seconds=0.5,
        )
        assert merge_stats([None, only]) == only


class TestSweepResultIndex:
    def test_get_is_indexed(self):
        sweep = run_slack_sweep(
            matrix_sizes=(512,), slack_values_s=(1e-6, 1e-4), threads=(1,),
            iterations=3,
        )
        p = sweep.get(512, 1, 1e-4)
        assert sweep._index[(512, 1, 1e-4)] is p

    def test_get_tolerance_fallback(self):
        sweep = run_slack_sweep(
            matrix_sizes=(512,), slack_values_s=(1e-4,), threads=(1,),
            iterations=3,
        )
        # Float-close but not bit-identical: still resolves.
        nearly = 1e-4 * (1 + 1e-12)
        assert nearly != 1e-4
        assert sweep.get(512, 1, nearly).slack_s == 1e-4

    def test_get_missing_raises(self):
        sweep = run_slack_sweep(
            matrix_sizes=(512,), slack_values_s=(1e-4,), threads=(1,),
            iterations=3,
        )
        with pytest.raises(KeyError):
            sweep.get(1024, 1, 1e-4)
