"""The LLM inference-serving workload: DES, batcher, SLO penalty.

Three layers of coverage:

* unit tests on the DES-free pieces (arrival generation, the FIFO
  batch queue) including Hypothesis properties — the batcher never
  exceeds the batch-size cap, never reorders a stream, and serves
  exactly what was admitted, for arbitrary seeds and loads;
* end-to-end serving-run invariants (timeline ordering, determinism,
  process-pool bit-identity of the arrival stream);
* the latency-SLO pipeline: measured TTFT/TPOT inflation re-expressed
  as :class:`~repro.proxy.SweepPoint` series that the unchanged
  surrogate fits, and per-phase Equation 2/3 bounds from the
  unchanged :class:`~repro.model.CDIProfiler`.
"""

import dataclasses
import json
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.inference import (
    BatchQueue,
    InferenceProfileConfig,
    LLMSpec,
    PHASE_DECODE,
    PHASE_PREFILL,
    TPOT_SERIES,
    TTFT_SERIES,
    generate_requests,
    measure_slo_response,
    phase_profile,
    predict_slo_response,
    profile_inference,
    run_inference,
)
from repro.apps.profilecache import _profile_doc
from repro.des.timebase import quantize
from repro.model import CDIProfiler, adaptive_slack_sweep
from repro.model.surrogate import extract_training_series
from repro.proxy import SlackResponseSurface, run_slack_sweep
from repro.serve import SurrogateModel

TINY = InferenceProfileConfig(
    num_requests=8, prompt_tokens_mean=64, decode_tokens_mean=12
)


def tiny(**overrides):
    return dataclasses.replace(TINY, **overrides)


# -- arrivals ----------------------------------------------------------------


class TestArrivals:
    def test_deterministic_under_seed(self):
        assert generate_requests(TINY) == generate_requests(TINY)

    def test_seed_changes_the_stream(self):
        assert generate_requests(TINY) != generate_requests(
            tiny(seed=TINY.seed + 1)
        )

    def test_arrivals_sorted_and_tick_aligned(self):
        reqs = generate_requests(TINY)
        times = [r.arrival_s for r in reqs]
        assert times == sorted(times)
        assert all(t == quantize(t) for t in times)

    def test_token_counts_clipped_to_sane_range(self):
        reqs = generate_requests(tiny(num_requests=64))
        for r in reqs:
            assert 1 <= r.prompt_tokens <= TINY.prompt_tokens_mean * 8
            assert 1 <= r.decode_tokens <= TINY.decode_tokens_mean * 8

    def test_explicit_trace_is_used_verbatim(self):
        trace = (0.0, 0.25, 0.125)
        reqs = generate_requests(
            tiny(num_requests=3, arrival_trace=trace)
        )
        assert [r.arrival_s for r in reqs] == [0.0, 0.125, 0.25]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_stream_bit_identical_for_any_seed(self, seed):
        cfg = tiny(seed=seed)
        assert generate_requests(cfg) == generate_requests(cfg)

    def test_stream_bit_identical_across_process_pool(self):
        # The conclusions depend on worker processes reproducing the
        # exact arrival stream the parent would have generated.
        cfgs = [tiny(seed=s) for s in (1, 2026, 31337)]
        inline = [generate_requests(c) for c in cfgs]
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = list(pool.map(generate_requests, cfgs))
        assert pooled == inline


# -- the batcher, DES-free ---------------------------------------------------


class TestBatchQueue:
    def _requests(self, n):
        return generate_requests(tiny(num_requests=n))

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        max_batch=st.integers(min_value=1, max_value=9),
    )
    def test_fifo_partition_invariants(self, n, max_batch):
        q = BatchQueue()
        reqs = self._requests(n)
        for r in reqs:
            q.admit(r)
        assert q.high_water == n
        popped = []
        while len(q):
            batch = q.pop_batch(max_batch)
            assert 1 <= len(batch) <= max_batch
            popped.extend(batch)
        # Served == admitted, order preserved, nothing duplicated.
        assert q.drained
        assert q.served == q.admitted == n
        assert popped == list(reqs)

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.none(),  # admit the next request
                st.integers(min_value=1, max_value=6),  # pop a batch
            ),
            max_size=60,
        )
    )
    def test_interleaved_admit_pop_never_reorders(self, ops):
        q = BatchQueue()
        supply = iter(self._requests(60))
        admitted, popped = [], []
        for op in ops:
            if op is None:
                r = next(supply)
                q.admit(r)
                admitted.append(r)
            else:
                batch = q.pop_batch(op)
                assert len(batch) <= op
                popped.extend(batch)
        assert popped == admitted[: len(popped)]
        assert q.served + len(q) == q.admitted == len(admitted)

    def test_pop_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            BatchQueue().pop_batch(0)


# -- serving-run invariants --------------------------------------------------


class TestRunInference:
    def test_run_is_deterministic(self):
        a, b = run_inference(TINY), run_inference(TINY)
        assert json.dumps(_profile_doc(a.profile), sort_keys=True) == \
            json.dumps(_profile_doc(b.profile), sort_keys=True)
        assert a.slo == b.slo
        assert a.requests == b.requests
        assert a.batches == b.batches

    def test_every_request_served_once(self):
        result = run_inference(TINY)
        assert len(result.requests) == TINY.num_requests
        batched = [
            rid for b in result.batches for rid in b.request_ids
        ]
        assert sorted(batched) == list(range(TINY.num_requests))

    def test_timeline_ordering(self):
        result = run_inference(TINY)
        by_batch = {b.batch_id: b for b in result.batches}
        for r in result.requests:
            assert r.arrival_s <= r.dispatch_s
            assert r.dispatch_s <= r.first_token_s <= r.done_s
            assert r.dispatch_s == by_batch[r.batch_id].dispatch_s
        dispatches = [b.dispatch_s for b in result.batches]
        assert dispatches == sorted(dispatches)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rate=st.floats(min_value=0.5, max_value=64.0),
        max_batch=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=1, max_value=10),
    )
    def test_batcher_invariants_under_load(self, seed, rate, max_batch, n):
        result = run_inference(
            tiny(
                seed=seed,
                request_rate_per_s=rate,
                max_batch_size=max_batch,
                num_requests=n,
                prompt_tokens_mean=16,
                decode_tokens_mean=4,
            )
        )
        batched = [
            rid for b in result.batches for rid in b.request_ids
        ]
        # Never over the cap, never reordered, served == admitted.
        assert all(b.size <= max_batch for b in result.batches)
        assert batched == sorted(batched)
        assert len(batched) == n
        assert result.queue_high_water <= n

    def test_fastforward_refusal_is_aperiodic_arrivals(self):
        profile = profile_inference(TINY)
        assert profile.fastforward.reason == "aperiodic-arrivals"
        assert not profile.fastforward.certified

    def test_config_validation(self):
        for bad in (
            {"num_requests": 0},
            {"request_rate_per_s": 0.0},
            {"max_batch_size": 0},
            {"batch_window_s": -1e-3},
            {"prompt_tokens_mean": 0},
            {"kv_spill_every": -1},
            {"ttft_slo_s": 0.0},
            {"jitter": 1.5},
        ):
            with pytest.raises(ValueError):
                tiny(**bad)

    def test_kv_spill_accounting(self):
        result = run_inference(tiny(num_requests=12, kv_spill_every=2))
        spilled = sum(b.kv_spilled_bytes for b in result.batches)
        restored = sum(b.kv_restored_bytes for b in result.batches)
        assert spilled > 0
        # Every restore replays a previous spill, never invents bytes.
        assert restored <= spilled
        kv = TINY.llm.kv_bytes_per_token
        for b in result.batches:
            assert b.kv_spilled_bytes % kv == 0


class TestLLMSpec:
    def test_kv_bytes_per_token(self):
        spec = LLMSpec()
        assert spec.kv_bytes_per_token == (
            2 * spec.n_layers * spec.d_model * spec.dtype_bytes
        )

    def test_decode_is_memory_bound(self):
        # One-token decode moves the full weights: bytes dominate.
        spec = LLMSpec()
        k = spec.decode_kernel(active=1, kv_tokens=0)
        assert k.bytes_accessed >= spec.weight_bytes
        assert k.flops / spec.weight_bytes < 4  # low arithmetic intensity


# -- the latency-SLO pipeline ------------------------------------------------


@pytest.fixture(scope="module")
def slo_response():
    return measure_slo_response(TINY, slack_values_s=(1e-4, 1e-3))


class TestSLOResponse:
    def test_rejects_nonpositive_slack(self):
        with pytest.raises(ValueError):
            measure_slo_response(TINY, slack_values_s=(0.0,))

    def test_tpot_inflation_monotone_nonnegative(self, slo_response):
        penalties = slo_response.tpot_penalty
        assert penalties[0] >= 0
        assert penalties[1] > penalties[0]

    def test_large_slack_inflates_ttft(self, slo_response):
        # TTFT at small slack can move either way (batch composition
        # shifts); at 1 ms per call it must strictly degrade.
        assert slo_response.ttft_penalty[-1] > 0

    def test_to_sweep_points_carries_the_inflation(self, slo_response):
        points = slo_response.to_sweep_points()
        assert len(points) == 2 * len(slo_response.slack_values_s)
        series = {p.matrix_size for p in points}
        assert series == {TTFT_SERIES, TPOT_SERIES}
        by_series = {
            s: [p for p in points if p.matrix_size == s] for s in series
        }
        for p, want in zip(
            by_series[TPOT_SERIES], slo_response.tpot_penalty
        ):
            assert p.penalty == pytest.approx(want)

    def test_surrogate_fits_slo_series_unchanged(self, slo_response):
        # The acceptance path: latency metrics ride SweepPoint-shaped
        # plumbing into the untouched surrogate stack.
        points = slo_response.to_sweep_points()
        series = extract_training_series(points)
        assert {s.matrix_size for s in series} <= {
            TTFT_SERIES, TPOT_SERIES,
        }
        model = SurrogateModel.fit(points)
        pred = model.predict(TPOT_SERIES, 1e-3, 1)
        measured = max(slo_response.tpot_penalty[-1], 0.0)
        assert pred.penalty == pytest.approx(measured)


class TestPhasePrediction:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_inference(TINY)

    @pytest.fixture(scope="class")
    def profiler(self):
        sweep = run_slack_sweep(
            matrix_sizes=(512, 2048),
            slack_values_s=(1e-5, 1e-4, 1e-3),
            threads=(1,),
            iterations=10,
            workers=1,
        )
        return CDIProfiler(SlackResponseSurface(sweep))

    def test_phase_profiles_partition_the_work(self, profile):
        prefill = phase_profile(profile, PHASE_PREFILL)
        decode = phase_profile(profile, PHASE_DECODE)
        assert prefill.runtime_s > 0 and decode.runtime_s > 0
        assert prefill.trace.busy_time() == prefill.runtime_s
        # Decode is chatty: far more API calls per busy second.
        assert (
            decode.cuda_calls_per_second
            > prefill.cuda_calls_per_second
        )

    def test_phase_profile_rejects_missing_phase(self, profile):
        with pytest.raises(ValueError):
            phase_profile(profile, 99)

    def test_predicted_response_through_unchanged_model(
        self, profiler, profile
    ):
        slacks = (1e-4, 1e-3)
        predicted = predict_slo_response(profiler, profile, slacks)
        for phase in (predicted.prefill, predicted.decode):
            assert set(phase) == set(slacks)
            for s in slacks:
                assert 0 <= phase[s].lower <= phase[s].upper
        # The headline: decode's direct-delay term dominates — the
        # paper's "admissible" delay is exactly what a per-token SLO
        # pays for, so the <1% conclusion breaks for interactive
        # traffic even when the starvation bounds stay small.
        for s in slacks:
            assert (
                predicted.decode_direct[s]
                > predicted.prefill_direct[s]
                > 0
            )
        assert predicted.decode_direct[1e-3] > 0.5

    def test_adaptive_surface_feeds_the_same_pipeline(self, profile):
        # The adaptive-refinement path produces a predictor-grade
        # surface for the serving phases too — unchanged, like the
        # dense sweep.
        res = adaptive_slack_sweep(
            (512, 2048),
            (1e-5, 1e-4, 1e-3),
            threads=(1,),
            iterations=10,
            workers=1,
        )
        profiler = CDIProfiler(SlackResponseSurface(res.dense))
        predicted = predict_slo_response(profiler, profile, (1e-4,))
        p = predicted.decode[1e-4]
        assert 0 <= p.lower <= p.upper
