"""Property-based tests: scheduler and power-model invariants.

The Section V comparison rests on bookkeeping identities that must
hold for *any* job stream, not just the worked example: pools conserve
inventory through compose/release cycles, every traditional placement
decomposes into used + trapped exactly, CDI grants are exact (so its
achieved CPU:GPU ratio is never further from the request than the
traditional node ratio), and trapped power is linear in the trapped
counts.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdi import (
    CDIScheduler,
    CPUNode,
    GPUChassis,
    JobRequest,
    PowerModel,
    ResourcePool,
    TraditionalScheduler,
    compare_power,
)

CORES_PER_NODE = 48  # two EPYC-7413 sockets
GPUS_PER_NODE = 4


def make_pool(nodes=8, chassis=4, gpus_per_chassis=8):
    return ResourcePool(
        nodes=[CPUNode(node_id=f"n{i}", sockets=2) for i in range(nodes)],
        chassis=[
            GPUChassis(chassis_id=f"c{i}", gpu_count=gpus_per_chassis, rack=i)
            for i in range(chassis)
        ],
    )


jobs_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=96),   # cores
        st.integers(min_value=0, max_value=8),    # gpus
    ),
    min_size=1,
    max_size=12,
).map(
    lambda sizes: [
        JobRequest(name=f"job{i}", cores=c, gpus=g)
        for i, (c, g) in enumerate(sizes)
    ]
)


class TestInventoryConservation:
    @settings(max_examples=40, deadline=None)
    @given(jobs=jobs_strategy)
    def test_cdi_pool_conserves_inventory(self, jobs):
        pool = make_pool()
        total_cores, total_gpus = pool.total_cores, pool.total_gpus
        sched = CDIScheduler(pool)
        outcome = sched.schedule(jobs)

        granted_cores = sum(p.granted_cores for p in outcome.placements)
        granted_gpus = sum(p.granted_gpus for p in outcome.placements)
        assert pool.free_cores == total_cores - granted_cores
        assert pool.free_gpus == total_gpus - granted_gpus
        assert len(outcome.placements) + len(outcome.rejected) == len(jobs)

        # Releasing every composition restores the pool bit for bit.
        for name in [p.job.name for p in outcome.placements]:
            sched.composer.release(sched.compositions[name])
        assert pool.free_cores == total_cores
        assert pool.free_gpus == total_gpus
        # And no chassis keeps phantom power state behind.
        assert all(not c.powered_on for c in pool.chassis.values())

    @settings(max_examples=40, deadline=None)
    @given(jobs=jobs_strategy)
    def test_traditional_conserves_nodes(self, jobs):
        sched = TraditionalScheduler(
            node_count=8,
            cores_per_node=CORES_PER_NODE,
            gpus_per_node=GPUS_PER_NODE,
        )
        outcome = sched.schedule(jobs)
        nodes_used = sum(
            p.granted_cores // CORES_PER_NODE for p in outcome.placements
        )
        assert sched.free_nodes == 8 - nodes_used
        assert 0 <= sched.free_nodes <= 8


class TestTrappedAccounting:
    @settings(max_examples=40, deadline=None)
    @given(jobs=jobs_strategy)
    def test_traditional_grant_decomposes_exactly(self, jobs):
        sched = TraditionalScheduler(
            node_count=8,
            cores_per_node=CORES_PER_NODE,
            gpus_per_node=GPUS_PER_NODE,
        )
        outcome = sched.schedule(jobs)
        for p in outcome.placements:
            # granted = used + trapped, in whole-node multiples.
            assert p.granted_cores == p.job.cores + p.trapped_cores
            assert p.granted_gpus == p.job.gpus + p.trapped_gpus
            assert p.granted_cores % CORES_PER_NODE == 0
            assert p.granted_gpus % GPUS_PER_NODE == 0
            assert p.trapped_cores >= 0 and p.trapped_gpus >= 0

    @settings(max_examples=40, deadline=None)
    @given(jobs=jobs_strategy)
    def test_cdi_traps_nothing(self, jobs):
        outcome = CDIScheduler(make_pool()).schedule(jobs)
        assert outcome.trapped_cores == 0
        assert outcome.trapped_gpus == 0
        for p in outcome.placements:
            assert p.granted_cores == p.job.cores
            assert p.granted_gpus == p.job.gpus


class TestAchievedRatio:
    @settings(max_examples=40, deadline=None)
    @given(jobs=jobs_strategy)
    def test_cdi_never_worse_than_traditional(self, jobs):
        trad = TraditionalScheduler(
            node_count=16,
            cores_per_node=CORES_PER_NODE,
            gpus_per_node=GPUS_PER_NODE,
        ).schedule(jobs)
        cdi = CDIScheduler(make_pool(nodes=16, chassis=8)).schedule(jobs)
        placed_both = {p.job.name for p in trad.placements} & {
            p.job.name for p in cdi.placements
        }
        for name in placed_both:
            want = trad.placement(name).requested_ratio
            if math.isinf(want):
                continue  # no-GPU jobs have no finite target ratio
            # CDI is exact; traditional is stuck at the node ratio.
            cdi_err = abs(cdi.placement(name).cores_per_gpu - want)
            trad_err = abs(trad.placement(name).cores_per_gpu - want)
            assert cdi_err == 0.0
            assert cdi_err <= trad_err


class TestPowerModel:
    @settings(max_examples=40, deadline=None)
    @given(
        jobs=jobs_strategy,
        gpu_w=st.floats(min_value=0.0, max_value=500.0),
        core_w=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_trapped_power_is_linear(self, jobs, gpu_w, core_w):
        trad = TraditionalScheduler(
            node_count=8,
            cores_per_node=CORES_PER_NODE,
            gpus_per_node=GPUS_PER_NODE,
        ).schedule(jobs)
        cdi = CDIScheduler(make_pool()).schedule(jobs)
        model = PowerModel(gpu_idle_w=gpu_w, core_idle_w=core_w)
        cmp = compare_power(trad, cdi, model)
        assert cmp.traditional_w == pytest.approx(
            trad.trapped_gpus * gpu_w + trad.trapped_cores * core_w
        )
        assert cmp.cdi_w == 0.0  # CDI powers down what it does not grant
        assert cmp.saved_w == cmp.traditional_w
        assert cmp.saved_kwh(10.0) == pytest.approx(cmp.saved_w / 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(gpu_idle_w=-1.0)
        cmp = compare_power(
            TraditionalScheduler(node_count=1).schedule([]),
            CDIScheduler(make_pool(nodes=1, chassis=1)).schedule([]),
        )
        with pytest.raises(ValueError):
            cmp.saved_kwh(-1.0)
