"""The shared slack quantization rule and its boundary regression.

One bug class this pins down: ``SweepResult.get`` and
``SlackResponseSurface`` historically rounded slack keys differently,
so a slack that round-tripped through one could miss in the other.
Both now share :mod:`repro.proxy.quantize`, as does surrogate
training extraction — a near-miss query must resolve identically
everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proxy import (
    SlackResponseSurface,
    dedupe_slacks,
    run_slack_sweep,
    same_slack,
    slack_bucket,
    slack_tolerance,
    snap_slack,
)
from repro.serve import SurrogateModel

slacks = st.floats(min_value=1e-9, max_value=1e-1, allow_nan=False)


# -- the quantization helpers -------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(s=slacks)
def test_bucket_is_stable_within_tolerance(s):
    tol = slack_tolerance(s)
    assert same_slack(s, s + tol / 2)
    assert same_slack(s, s - tol / 2)
    assert slack_bucket(s) == slack_bucket(snap_slack(s + tol / 2, [s]))


@settings(max_examples=50, deadline=None)
@given(s=slacks)
def test_distinct_slacks_stay_distinct(s):
    assert not same_slack(s, s * 1.01)
    assert snap_slack(s * 1.01, [s]) is None


def test_snap_prefers_the_measured_grid_value():
    grid = [1e-5, 1e-4, 1e-3]
    assert snap_slack(1e-4 * (1 + 5e-10), grid) == 1e-4
    assert snap_slack(2e-4, grid) is None


def test_dedupe_collapses_within_tolerance():
    kept = dedupe_slacks([1e-4, 1e-4 * (1 + 5e-10), 2e-4])
    assert kept == [1e-4, 2e-4]


# -- boundary regression: one rule everywhere ---------------------------------

@pytest.fixture(scope="module")
def tiny_sweep():
    return run_slack_sweep(
        matrix_sizes=[256], slack_values_s=[1e-5, 1e-4], threads=[1],
        iterations=3, target_compute_s=2.0,
        workers=1, cache=False,
    )


def test_near_miss_resolves_identically_everywhere(tiny_sweep):
    """result.get, the surface, and the surrogate agree on near-misses."""
    surface = SlackResponseSurface(tiny_sweep)
    surrogate = SurrogateModel.fit(tiny_sweep)
    for probe in (1e-4, 1e-4 * (1 + 5e-10), 1e-4 * (1 - 5e-10)):
        point = tiny_sweep.get(256, 1, probe)
        assert point is not None
        expected = max(0.0, point.penalty)
        assert surface.penalty(256, probe, 1) == expected
        got = surrogate.predict(256, probe, 1)
        assert got.penalty == expected
        assert got.bound == 0.0


def test_beyond_tolerance_misses_everywhere(tiny_sweep):
    probe = 1e-4 * 0.99  # interior, far outside the snap tolerance
    with pytest.raises(KeyError):
        tiny_sweep.get(256, 1, probe)
    surface = SlackResponseSurface(tiny_sweep)
    # The surface interpolates (that is its job), but it must not
    # return either measured endpoint verbatim.
    interpolated = surface.penalty(256, probe, 1)
    assert interpolated != surface.penalty(256, 1e-4, 1)
    assert interpolated != surface.penalty(256, 1e-5, 1)


def test_surface_construction_dedupes_near_duplicate_points(tiny_sweep):
    """Jittered duplicates of a measured slack collapse to one column."""
    import dataclasses

    from repro.proxy import SweepResult

    points = list(tiny_sweep.points)
    result = SweepResult()
    for p in points:
        result.add(p)
    for p in points:
        result.add(
            dataclasses.replace(p, slack_s=p.slack_s * (1 + 5e-10))
        )
    surface = SlackResponseSurface(result)
    assert len(list(surface.iter_points())) == len(points)
