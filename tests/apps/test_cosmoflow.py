"""Tests for the CosmoFlow workload model: layers, net, traced training."""

import pytest

from repro.apps.cosmoflow import (
    COSMOFLOW_REQUIRED_CORES,
    CONV_CHANNELS,
    CosmoFlowNet,
    CosmoFlowProfileConfig,
    cosmoflow_cpu_runtime,
    cosmoflow_layers,
    profile_cosmoflow,
)
from repro.hw import A100_SXM4_40GB, MiB


class TestLayers:
    def test_five_conv_blocks_three_dense(self):
        convs, denses = cosmoflow_layers()
        assert len(convs) == 5
        assert len(denses) == 3

    def test_channel_progression(self):
        convs, _ = cosmoflow_layers()
        assert tuple(c.out_channels for c in convs) == CONV_CHANNELS
        assert convs[0].in_channels == 4

    def test_spatial_halving(self):
        convs, _ = cosmoflow_layers()
        assert [c.spatial for c in convs] == [128, 64, 32, 16, 8]

    def test_dense_flattened_input(self):
        _, denses = cosmoflow_layers()
        # After 5 pools: 4^3 voxels x 512 channels.
        assert denses[0].in_features == 512 * 4**3
        assert denses[-1].out_features == 4

    def test_conv_flops_scale_with_batch(self):
        convs, _ = cosmoflow_layers()
        assert convs[0].forward_flops(8) == 2 * convs[0].forward_flops(4)

    def test_forward_kernels_per_block(self):
        convs, _ = cosmoflow_layers()
        names = [k.name for k in convs[0].forward_kernels(4)]
        assert names == ["conv1_fprop", "leaky_relu1", "maxpool1"]

    def test_backward_has_dgrad_and_wgrad(self):
        convs, _ = cosmoflow_layers()
        names = [k.name for k in convs[2].backward_kernels(4)]
        assert "conv3_dgrad" in names
        assert "conv3_wgrad" in names


class TestCosmoFlowNet:
    @pytest.fixture
    def net(self):
        return CosmoFlowNet(batch_size=4)

    def test_parameter_count_magnitude(self, net):
        # ~9M parameters for the standard CosmoFlow network.
        assert 5e6 < net.parameter_count() < 15e6

    def test_sample_bytes(self, net):
        # 128^3 voxels x 4 channels x float32 = 32 MiB.
        assert net.sample_bytes() == 32 * MiB

    def test_training_step_has_dozens_of_kernels(self, net):
        # The paper: CosmoFlow "executes dozens of different" kernels.
        kernels = net.training_step_kernels()
        assert 30 <= len(kernels) <= 80

    def test_validation_step_is_forward_only(self, net):
        assert len(net.validation_step_kernels()) < len(
            net.training_step_kernels()
        )
        assert not any(
            "grad" in k.name for k in net.validation_step_kernels()
        )

    def test_top5_kernels_near_half_of_runtime(self, net):
        # Paper: the top five kernels account for 49.9% of runtime.
        from collections import defaultdict

        totals = defaultdict(float)
        for k in net.training_step_kernels():
            totals[k.name] += k.execution_time(A100_SXM4_40GB)
        ordered = sorted(totals.values(), reverse=True)
        share = sum(ordered[:5]) / sum(ordered)
        assert 0.40 <= share <= 0.65

    def test_step_gpu_seconds_order_of_magnitude(self, net):
        # Batch-4 training step on an A100: ~100-200 ms.
        t = net.step_gpu_seconds(A100_SXM4_40GB)
        assert 0.05 < t < 0.5

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            CosmoFlowNet(batch_size=0)


class TestProfileConfig:
    def test_step_counts_mini_dataset(self):
        cfg = CosmoFlowProfileConfig()
        # 5 epochs x 1024/4 = 1280 steps each for train and val.
        assert cfg.train_steps == 1280
        assert cfg.val_steps == 1280

    def test_validation(self):
        with pytest.raises(ValueError):
            CosmoFlowProfileConfig(batch_size=0)
        with pytest.raises(ValueError):
            CosmoFlowProfileConfig(prefetch_batches=0)


class TestProfileCosmoflow:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_cosmoflow(
            CosmoFlowProfileConfig(epochs=1, train_samples=128, val_samples=64)
        )

    def test_pessimistic_parallelism_is_4(self, profile):
        assert profile.queue_parallelism == 4

    def test_gpu_dominant(self, profile):
        frac = profile.trace.kernels().runtime_fraction(profile.runtime_s)
        assert frac > 0.5

    def test_kernel_variety(self, profile):
        names = set(e.name for e in profile.trace.kernels())
        assert len(names) >= 30

    def test_memcpy_size_spectrum(self, profile):
        sizes = profile.trace.memcpys().sizes() / MiB
        # Small per-step copies dominate by count...
        assert (sizes <= 1).sum() > len(sizes) * 0.5
        # ...large prefetch staging transfers dominate by volume.
        assert sizes.max() > 256

    def test_mean_transfer_size_near_paper(self, profile):
        # Paper Table III: CosmoFlow mean 34.4 MiB.
        mean = profile.trace.memcpys().sizes().mean() / MiB
        assert 15 < mean < 60

    def test_small_copies_per_step_rate(self, profile):
        sizes = profile.trace.memcpys().sizes() / MiB
        steps = 128 // 4 + 64 // 4
        small_per_step = (sizes <= 1).sum() / steps
        assert 1.0 <= small_per_step <= 4.0


class TestCpuScaling:
    def test_flat_above_two_cores(self):
        # Paper: "absolutely no benefits from increasing the number of
        # processes or threads".
        cfg = CosmoFlowProfileConfig(epochs=1)
        base = cosmoflow_cpu_runtime(2, cfg)
        for cores in (4, 8, 24, 48):
            assert cosmoflow_cpu_runtime(cores, cfg) == pytest.approx(base)

    def test_degrades_below_two_cores(self):
        cfg = CosmoFlowProfileConfig(epochs=1)
        assert cosmoflow_cpu_runtime(1, cfg) > cosmoflow_cpu_runtime(2, cfg)

    def test_required_cores_constant(self):
        assert COSMOFLOW_REQUIRED_CORES == 2

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            cosmoflow_cpu_runtime(0)
