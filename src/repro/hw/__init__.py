"""Hardware models: CPU/GPU/node specs, PCIe fabric, device memory.

Defaults parameterize the paper's testbed (Narval: 2x EPYC 7413 +
4x A100-SXM4-40GB over PCIe Gen4).
"""

from .memory import DeviceAllocation, DeviceMemory, OutOfMemoryError
from .pcie import (
    BDF,
    EnumerationError,
    PCIE_DEFAULT_COMPLETION_TIMEOUT_S,
    PCIE_MAX_BUSES,
    PCIE_MAX_DEVICES_PER_BUS,
    PCIeDevice,
    PCIeDomain,
    PCIeSwitch,
    PCIeTopology,
    completion_timeout_margin,
)
from .specs import (
    A100_SXM4_40GB,
    CPUSpec,
    EPYC_7413,
    GiB,
    GPUSpec,
    KiB,
    MiB,
    NARVAL_NODE,
    NodeSpec,
    PCIE_GEN4_X16,
    PCIeSpec,
)

__all__ = [
    "GiB",
    "MiB",
    "KiB",
    "GPUSpec",
    "CPUSpec",
    "PCIeSpec",
    "NodeSpec",
    "A100_SXM4_40GB",
    "EPYC_7413",
    "PCIE_GEN4_X16",
    "NARVAL_NODE",
    "DeviceMemory",
    "DeviceAllocation",
    "OutOfMemoryError",
    "BDF",
    "PCIeDevice",
    "PCIeDomain",
    "PCIeSwitch",
    "PCIeTopology",
    "EnumerationError",
    "completion_timeout_margin",
    "PCIE_MAX_BUSES",
    "PCIE_MAX_DEVICES_PER_BUS",
    "PCIE_DEFAULT_COMPLETION_TIMEOUT_S",
]
