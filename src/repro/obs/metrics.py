"""Lightweight metrics primitives: counters, gauges, histograms, timers.

The reproduction's layers (DES kernel, GPU runtime, fabric, parallel
sweep engine) all publish into one :class:`MetricsRegistry` so every
run can leave a comparable telemetry artifact (see
:mod:`repro.obs.report`). Two design rules keep the subsystem honest:

* **Disabled by default, near-zero cost when disabled.** The global
  registry starts as a :class:`NullRegistry` whose instruments are
  shared no-op singletons — ``counter("x").inc()`` through it is two
  attribute lookups and an empty method call, and the simulator hot
  paths avoid even that by publishing *snapshots* after a run instead
  of instrumenting per-event (see :mod:`repro.obs.publish`).
* **Pull-friendly.** Instruments are plain objects with ``value`` /
  ``to_doc()``; the registry dumps to a nested plain dict, namespaced
  ``section.metric`` (e.g. ``des.events_dispatched``), which is the
  exact shape :class:`repro.obs.RunReport` serializes.

Enable collection for a scope with :func:`collecting`::

    with collecting() as registry:
        run_slack_sweep(...)
        report = RunReport.collect(registry, kind="sweep")

or process-wide with :func:`enable_metrics` / :func:`disable_metrics`
(what the CLI's ``--metrics-out`` does).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "collecting",
    "enable_metrics",
    "disable_metrics",
    "get_registry",
    "metrics_enabled",
]


class Counter:
    """A monotonically increasing count (events dispatched, cache hits)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_doc(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self._value:g}>"


class Gauge:
    """A point-in-time value that can go up or down (heap depth)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def to_doc(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self._value:g}>"


class Histogram:
    """A distribution of observed values with exact percentiles.

    Observations are kept raw (the workloads publishing here observe
    at most a few thousand values per run — per-point wall times,
    per-experiment durations), so percentiles are exact: linear
    interpolation between closest ranks, the same convention as
    ``numpy.percentile``'s default.
    """

    __slots__ = ("name", "help", "_values", "_sorted")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        self._values.append(float(value))
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.sum / len(self._values)

    @property
    def min(self) -> float:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return min(self._values)

    @property
    def max(self) -> float:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return max(self._values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 <= p <= 100), interpolated."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        values = self._values
        rank = (len(values) - 1) * p / 100.0
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return values[int(rank)]
        frac = rank - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    def to_doc(self) -> Dict[str, float]:
        """Summary dict: count/sum/mean/min/p50/p90/p99/max."""
        if not self._values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class Timer:
    """Context manager observing elapsed wall seconds into a histogram.

    >>> reg = MetricsRegistry()
    >>> with reg.timer("sweep.point_wall_s"):
    ...     pass
    """

    __slots__ = ("histogram", "_t0")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._t0: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        assert self._t0 is not None
        self.histogram.observe(time.perf_counter() - self._t0)
        self._t0 = None


class MetricsRegistry:
    """A namespace of named instruments every layer publishes into.

    Instrument names are dotted: ``<section>.<metric>`` (the section is
    the publishing layer — ``des``, ``gpu``, ``fabric``, ``cache``,
    ``executor``, ``experiments``). Asking for an existing name returns
    the existing instrument, so independent publishers accumulate into
    shared counters; asking for it with a different instrument kind is
    an error.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls: type, help: str) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, help)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, help)

    def timer(self, name: str, help: str = "") -> Timer:
        return Timer(self.histogram(name, help))

    def get(self, name: str) -> Optional[Any]:
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def clear(self) -> None:
        """Drop every instrument (fresh registry semantics)."""
        self._instruments.clear()

    def to_doc(self) -> Dict[str, Dict[str, Any]]:
        """Nested plain-dict dump: ``{section: {metric: value}}``.

        Histograms dump as their summary dict; counters and gauges as
        bare numbers. Metrics without a dot land in section ``""``.
        """
        doc: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._instruments):
            section, _, metric = name.rpartition(".")
            doc.setdefault(section, {})[metric] = self._instruments[
                name
            ].to_doc()
        return doc

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind when disabled.

    All mutating methods discard their arguments; reading values is an
    error (disabled metrics have no data), which catches code that
    forgets to check :func:`metrics_enabled` before consuming.
    """

    __slots__ = ()
    name = "<disabled>"
    help = ""

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullInstrument>"


#: The one shared no-op instrument (identity-comparable in tests).
_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every lookup returns the no-op singleton."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def timer(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def clear(self) -> None:
        pass

    def to_doc(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


#: The one shared disabled registry.
_NULL_REGISTRY = NullRegistry()

#: Process-wide active registry; swapped by enable/disable. Guarded by
#: a lock only on the swap (reads are a single attribute load).
_active: Union[MetricsRegistry, NullRegistry] = _NULL_REGISTRY
_swap_lock = threading.Lock()


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry (the shared null registry when disabled)."""
    return _active


def metrics_enabled() -> bool:
    """Whether a real registry is currently collecting."""
    return _active.enabled


def enable_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _active
    with _swap_lock:
        reg = registry if registry is not None else MetricsRegistry()
        _active = reg
    return reg


def disable_metrics() -> None:
    """Restore the no-op registry (the default state)."""
    global _active
    with _swap_lock:
        _active = _NULL_REGISTRY


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Enable metrics for a ``with`` block, restoring the prior state.

    Yields the collecting registry; nested uses stack correctly.
    """
    global _active
    with _swap_lock:
        prior = _active
        reg = registry if registry is not None else MetricsRegistry()
        _active = reg
    try:
        yield reg
    finally:
        with _swap_lock:
            _active = prior
