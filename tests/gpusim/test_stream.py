"""Unit tests for Stream mechanics: ordering, drain events, back-pressure."""

import pytest

from repro.des import Environment
from repro.gpusim import CudaRuntime, KernelSpec
from repro.hw import MiB
from repro.trace import CopyKind


def make():
    env = Environment()
    return env, CudaRuntime(env)


def drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


class TestOrdering:
    def test_copy_then_kernel_then_copy_serialize_in_stream(self):
        env, rt = make()

        def host():
            c1 = yield from rt.memcpy_async(MiB, CopyKind.H2D)
            k = yield from rt.launch(KernelSpec(name="k", duration_s=1e-3))
            c2 = yield from rt.memcpy_async(MiB, CopyKind.D2H)
            yield c2.completion
            return c1, k, c2

        c1, k, c2 = drive(env, host())
        assert c1.receipt.end <= k.receipt.start
        assert k.receipt.end <= c2.receipt.start

    def test_ops_retired_counter(self):
        env, rt = make()

        def host():
            for _ in range(5):
                yield from rt.memcpy(MiB, CopyKind.H2D)

        drive(env, host())
        assert rt.default_stream.ops_retired == 5


class TestDrainEvents:
    def test_drained_fires_immediately_when_idle(self):
        env, rt = make()

        def host():
            t0 = env.now
            yield rt.default_stream.drained()
            return env.now - t0

        assert drive(env, host()) == 0.0

    def test_drained_waits_for_in_flight_work(self):
        env, rt = make()

        def host():
            yield from rt.launch(KernelSpec(name="k", duration_s=0.5))
            t0 = env.now
            yield rt.default_stream.drained()
            return env.now - t0

        waited = drive(env, host())
        assert waited >= 0.45

    def test_pending_and_idle_flags(self):
        env, rt = make()
        observed = []

        def host():
            yield from rt.launch(KernelSpec(name="k", duration_s=1.0))
            observed.append((rt.default_stream.pending,
                             rt.default_stream.idle))
            yield rt.default_stream.drained()
            observed.append((rt.default_stream.pending,
                             rt.default_stream.idle))

        drive(env, host())
        assert observed[0][0] >= 1 and observed[0][1] is False
        assert observed[1] == (0, True)


class TestCrossStreamIndependence:
    def test_blocked_stream_does_not_block_another(self):
        env, rt = make()
        s1, s2 = rt.create_stream(), rt.create_stream()
        done = []

        def slow():
            yield from rt.launch(KernelSpec(name="slow", duration_s=10.0),
                                 stream=s1, blocking=True)
            done.append(("slow", env.now))

        def fast():
            # Copies use a different engine: finish long before s1.
            for _ in range(3):
                yield from rt.memcpy(MiB, CopyKind.H2D, s2)
            done.append(("fast", env.now))

        env.process(slow())
        env.process(fast())
        env.run()
        order = [name for name, _ in done]
        assert order == ["fast", "slow"]

    def test_kernels_across_streams_serialize_on_compute(self):
        env, rt = make()
        s1, s2 = rt.create_stream(), rt.create_stream()

        def host():
            k1 = yield from rt.launch(KernelSpec(name="a", duration_s=1.0),
                                      stream=s1)
            k2 = yield from rt.launch(KernelSpec(name="b", duration_s=1.0),
                                      stream=s2)
            yield k1.completion & k2.completion
            return k1, k2

        k1, k2 = drive(env, host())
        # Default (serial) compute engine: no overlap.
        assert k2.receipt.start >= k1.receipt.end or \
            k1.receipt.start >= k2.receipt.end


class TestCorrelationIds:
    def test_api_and_device_events_share_correlation(self):
        env, rt = make()

        def host():
            yield from rt.memcpy(MiB, CopyKind.H2D)

        drive(env, host())
        trace = rt.tracer.trace
        api = [e for e in trace if e.name == "cudaMemcpy"][0]
        dev = trace.memcpys()[0]
        assert api.correlation_id == dev.correlation_id != 0
