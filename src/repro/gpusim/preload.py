"""LD_PRELOAD-style slack interposition — the rejected alternative.

Section III-B of the paper considers injecting slack by interposing a
shared object before the CUDA runtime (``LD_PRELOAD``). The approach
fails for applications whose CUDA calls are reached through statically
linked libraries: those calls bypass the shim, so the injected slack
*undercounts* the real CDI delay by the uncovered fraction. The paper
reports preliminary tests where the method "generally agreed" with the
proxy approach but coverage confidence was hard.

:class:`PreloadShim` models exactly that: a :class:`SlackModel` that
only delays a configurable fraction of calls. Comparing a shim-injected
run against the runtime's built-in injection quantifies the coverage
error — the reason the paper built the proxy instead.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..network import SlackModel

__all__ = ["PreloadShim"]


class PreloadShim(SlackModel):
    """A slack model with incomplete call coverage.

    Parameters
    ----------
    slack_s:
        The per-call delay the shim would inject when it intercepts.
    coverage:
        Fraction of CUDA calls the dynamic linker actually routes
        through the shim (1.0 = everything dynamically linked; lower
        values model statically linked call paths).
    rng:
        Source of randomness deciding which calls are covered.
    """

    def __init__(
        self,
        slack_s: float,
        coverage: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(slack_s)
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        self.coverage = coverage
        self._rng = rng or np.random.default_rng(0)
        self.calls_seen = 0
        self.calls_missed = 0

    def sample(self) -> float:
        """Per-call delay: zero whenever the call bypasses the shim."""
        self.calls_seen += 1
        if self.coverage < 1.0 and self._rng.random() >= self.coverage:
            self.calls_missed += 1
            return 0.0
        return super().sample()

    @property
    def observed_coverage(self) -> float:
        """Fraction of seen calls the shim actually delayed."""
        if self.calls_seen == 0:
            return 1.0
        return 1.0 - self.calls_missed / self.calls_seen

    def undercount_s(self) -> float:
        """Slack the shim failed to inject (missed calls x delay)."""
        return self.calls_missed * self.slack_s
