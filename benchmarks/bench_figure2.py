"""Benchmark: regenerate Figure 2 (LAMMPS strong scaling)."""

import pytest

from repro.experiments import run_experiment


def test_bench_figure2(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("figure2", ctx), rounds=3, iterations=1
    )
    print_result(result)
    s = result.series[0]
    # Who wins where: big boxes gain from ranks, the small box loses.
    assert s.lines["Box Size 120"][-1] == pytest.approx(0.444, abs=0.03)
    assert s.lines["Box Size 20"][-1] > 5
