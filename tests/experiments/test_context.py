"""Tests for the shared experiment context (caching, configuration)."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.context import default_cache_dir


class TestConfiguration:
    def test_quick_mode_fixes_iterations(self):
        assert ExperimentContext(quick=True).sweep_iterations == 25
        assert ExperimentContext(quick=False).sweep_iterations is None

    def test_quick_mode_shortens_profiling_runs(self):
        quick = ExperimentContext(quick=True)
        full = ExperimentContext(quick=False)
        assert quick.lammps_config().params.steps < \
            full.lammps_config().params.steps
        assert quick.cosmoflow_config().epochs < \
            full.cosmoflow_config().epochs

    def test_full_mode_uses_paper_run_lengths(self):
        full = ExperimentContext(quick=False)
        assert full.lammps_config().params.steps == 5000
        cfg = full.cosmoflow_config()
        assert cfg.epochs == 5
        assert cfg.train_samples == cfg.val_samples == 1024

    def test_default_cache_dir_is_repo_local(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == ".cache"

    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
        assert default_cache_dir() == tmp_path / "shared"
        # Empty/whitespace values fall back to the repo-local default.
        monkeypatch.setenv("REPRO_CACHE_DIR", "  ")
        assert default_cache_dir().name == ".cache"

    def test_cache_dir_env_override_feeds_context(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        ctx = ExperimentContext(quick=True)
        cache = ctx.point_cache()
        assert cache is not None
        assert cache.root == tmp_path / "env-cache" / "points"
        # An explicit cache_dir still wins over the environment.
        ctx2 = ExperimentContext(quick=True, cache_dir=tmp_path / "explicit")
        assert ctx2.point_cache().root == tmp_path / "explicit" / "points"

    def test_adaptive_knobs(self):
        ctx = ExperimentContext(quick=True, adaptive=True, tol=5e-4)
        assert ctx.adaptive and ctx.tol == 5e-4
        with pytest.raises(ValueError):
            ExperimentContext(quick=True, tol=1e-3)

    def test_adaptive_surface_gets_own_cache_digest(self, tmp_path):
        dense = ExperimentContext(quick=True, cache_dir=tmp_path)
        adaptive = ExperimentContext(
            quick=True, cache_dir=tmp_path, adaptive=True
        )
        assert dense._surface_cache_path() != adaptive._surface_cache_path()


class TestProfileMemoization:
    def test_profiles_memoized(self):
        ctx = ExperimentContext(quick=True)
        assert ctx.lammps_profile() is ctx.lammps_profile()
        assert ctx.cosmoflow_profile() is ctx.cosmoflow_profile()

    def test_profiles_tuple(self):
        ctx = ExperimentContext(quick=True)
        lam, cosmo = ctx.profiles()
        assert lam.name == "lammps"
        assert cosmo.name == "cosmoflow"


class TestSurfaceCaching:
    def test_surface_memoized_in_process(self):
        ctx = ExperimentContext(quick=True)
        assert ctx.surface() is ctx.surface()

    def test_surface_disk_cache_roundtrip(self, tmp_path):
        # Build with a private cache dir: the first context writes,
        # the second reads the file instead of re-sweeping.
        ctx1 = ExperimentContext(quick=True, cache_dir=tmp_path)
        surface1 = ctx1.surface()
        files = list(tmp_path.glob("surface-*.json"))
        assert len(files) == 1

        ctx2 = ExperimentContext(quick=True, cache_dir=tmp_path)
        surface2 = ctx2.surface()
        assert surface2.matrix_sizes() == surface1.matrix_sizes()
        assert surface2.penalty(512, 1e-4) == pytest.approx(
            surface1.penalty(512, 1e-4)
        )
        # Still just one cache file (same key).
        assert len(list(tmp_path.glob("surface-*.json"))) == 1
