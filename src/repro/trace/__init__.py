"""Tracing and trace analysis — the simulator's NSight Systems.

Records kernel executions, memcpys and injected slack from the
simulated CUDA runtime, and produces the distribution profiles
(Figures 4 and 5) and queue-parallelism estimates the paper's
prediction model consumes.
"""

from .analysis import (
    DistributionProfile,
    ViolinSummary,
    kernel_duration_profile,
    launch_parallelism,
    memcpy_size_profile,
    summarize,
)
from .compare import KernelDelta, TraceComparison, compare_traces
from .container import Trace
from .epochs import EpochWindow, RepeatedEpochTrace, SegmentedEpochTrace
from .events import CopyKind, EventKind, TraceEvent
from .export import from_csv, from_json, to_csv, to_json
from .store import ColumnarTrace, ColumnStore
from .timeline import (
    GapAnalysis,
    device_gaps,
    device_gaps_reference,
    utilization_series,
    utilization_series_reference,
)
from .tracer import NullTracer, Tracer

__all__ = [
    "Trace",
    "ColumnarTrace",
    "ColumnStore",
    "RepeatedEpochTrace",
    "SegmentedEpochTrace",
    "EpochWindow",
    "TraceEvent",
    "EventKind",
    "CopyKind",
    "Tracer",
    "NullTracer",
    "ViolinSummary",
    "DistributionProfile",
    "summarize",
    "kernel_duration_profile",
    "memcpy_size_profile",
    "launch_parallelism",
    "to_json",
    "from_json",
    "to_csv",
    "from_csv",
    "GapAnalysis",
    "device_gaps",
    "device_gaps_reference",
    "utilization_series",
    "utilization_series_reference",
    "KernelDelta",
    "TraceComparison",
    "compare_traces",
]
