"""Benchmark: regenerate Figure 4 (kernel-duration distributions)."""

from repro.experiments import run_experiment


def test_bench_figure4(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("figure4", ctx), rounds=1, iterations=1
    )
    print_result(result)
    lammps, cosmo = result.tables
    assert lammps.column("kernel")[-1] == "Total"
    # CosmoFlow's top five cover about half the kernel time (paper 49.9%).
    share = float(cosmo.notes[0].split("cover ")[1].split("%")[0])
    assert 40 < share < 65
