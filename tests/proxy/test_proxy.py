"""Tests for the slack proxy: calibration, runs, sweeps, response surface."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import OutOfMemoryError
from repro.network import SlackModel
from repro.proxy import (
    CUDA_CALLS_PER_ITERATION,
    ITERATION_CEILING,
    ITERATION_FLOOR,
    ProxyConfig,
    SlackResponseSurface,
    calibrate_iterations,
    calibrate_matrix_size,
    run_proxy,
    run_slack_sweep,
    time_single_kernel,
)


class TestCalibration:
    def test_iteration_floor(self):
        assert calibrate_iterations(100.0) == ITERATION_FLOOR

    def test_iteration_ceiling(self):
        assert calibrate_iterations(1e-6) == ITERATION_CEILING

    def test_iteration_target(self):
        # 30 s / 0.1 s per kernel = 300 iterations.
        assert calibrate_iterations(0.1) == 300

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            calibrate_iterations(0.0)
        with pytest.raises(ValueError):
            calibrate_iterations(1.0, floor=0)
        with pytest.raises(ValueError):
            calibrate_iterations(1.0, floor=10, ceiling=5)

    def test_single_kernel_time_grows_with_n(self):
        t_small = time_single_kernel(512)
        t_large = time_single_kernel(8192)
        assert t_large > t_small * 100

    def test_calibrate_matrix_size_bundle(self):
        cal = calibrate_matrix_size(2**13)
        assert cal.matrix_size == 8192
        assert cal.matrix_bytes == 8192 * 8192 * 4
        assert cal.iterations == calibrate_iterations(cal.kernel_time_s)
        assert cal.raw_compute_s == pytest.approx(
            cal.kernel_time_s * cal.iterations
        )

    def test_paper_iteration_bounds_on_grid(self):
        # Smallest proxy kernels hit the ceiling; the largest, the floor
        # neighbourhood (~8 iterations for 2^15's multi-second kernel).
        assert calibrate_matrix_size(2**9).iterations == ITERATION_CEILING
        assert calibrate_matrix_size(2**15).iterations < 20


class TestProxyConfig:
    def test_matrix_bytes(self):
        cfg = ProxyConfig(matrix_size=2**15)
        assert cfg.matrix_bytes == 4 * 1024**3  # 4 GiB per matrix

    def test_device_bytes_needed_scales_with_threads(self):
        cfg = ProxyConfig(matrix_size=2**15, threads=4)
        assert cfg.device_bytes_needed == 48 * 1024**3

    def test_validation(self):
        with pytest.raises(ValueError):
            ProxyConfig(matrix_size=0)
        with pytest.raises(ValueError):
            ProxyConfig(threads=0)
        with pytest.raises(ValueError):
            ProxyConfig(iterations=-1)


class TestRunProxy:
    def test_zero_slack_baseline(self):
        result = run_proxy(ProxyConfig(matrix_size=512, iterations=10))
        assert result.slack_s == 0.0
        assert result.injected_slack_s == 0.0
        assert result.iterations == 10
        assert result.corrected_runtime_s == result.loop_runtime_s
        assert len(result.trace.kernels()) == 10

    def test_five_cuda_calls_per_iteration(self):
        result = run_proxy(
            ProxyConfig(matrix_size=512, iterations=7),
            SlackModel(1e-6),
        )
        assert result.cuda_calls == 7 * CUDA_CALLS_PER_ITERATION
        # Each call got exactly one injected delay.
        assert result.injected_slack_s == pytest.approx(
            result.cuda_calls * 1e-6
        )

    def test_equation1_correction(self):
        slack = 1e-4
        result = run_proxy(
            ProxyConfig(matrix_size=512, iterations=20), SlackModel(slack)
        )
        expected = result.loop_runtime_s - 20 * CUDA_CALLS_PER_ITERATION * slack
        assert result.corrected_runtime_s == pytest.approx(expected)

    def test_corrected_runtime_at_least_baseline(self):
        base = run_proxy(ProxyConfig(matrix_size=512, iterations=50))
        slowed = run_proxy(
            ProxyConfig(matrix_size=512, iterations=50), SlackModel(1e-3)
        )
        assert slowed.corrected_runtime_s >= base.loop_runtime_s * 0.999

    def test_trace_has_three_copies_per_iteration(self):
        result = run_proxy(ProxyConfig(matrix_size=512, iterations=5))
        assert len(result.trace.memcpys()) == 15

    def test_multi_thread_kernels_multiply(self):
        result = run_proxy(ProxyConfig(matrix_size=512, threads=4, iterations=5))
        assert len(result.trace.kernels()) == 20

    def test_oom_for_large_matrices_many_threads(self):
        # The paper's exclusion: 2^15 needs 3 x 4 GiB per thread.
        with pytest.raises(OutOfMemoryError):
            run_proxy(ProxyConfig(matrix_size=2**15, threads=4, iterations=5))

    def test_two_threads_at_max_matrix_fit(self):
        cfg = ProxyConfig(matrix_size=2**15, threads=2, iterations=5)
        assert cfg.device_bytes_needed <= 40 * 1024**3


class TestSlackResponseTrends:
    """The paper's three key Figure 3 trends, as integration tests."""

    @staticmethod
    def norm(matrix_size, slack_s, threads=1, iterations=30):
        cfg = ProxyConfig(matrix_size=matrix_size, threads=threads,
                          iterations=iterations)
        base = run_proxy(cfg)
        run = run_proxy(cfg, SlackModel(slack_s))
        return run.corrected_runtime_s / base.loop_runtime_s

    def test_longer_kernels_more_resilient(self):
        small = self.norm(512, 1e-3)
        large = self.norm(8192, 1e-3)
        assert small > 1.5
        assert large < 1.05
        assert large < small

    def test_parallel_threads_increase_tolerance(self):
        serial = self.norm(512, 1e-3, threads=1)
        parallel = self.norm(512, 1e-3, threads=8)
        assert parallel < serial

    def test_dropoff_sharpens_with_slack(self):
        # Penalty grows superlinearly across slack decades for a small
        # kernel: each decade multiplies the penalty ~10x.
        p1 = self.norm(512, 1e-4) - 1.0
        p2 = self.norm(512, 1e-3) - 1.0
        assert p2 > 5 * p1

    def test_2_13_sees_about_10pct_at_10ms(self):
        # The paper's anchor: matrix 2^13 first exceeds 1% at 10 ms of
        # slack, reaching ~10%.
        n = self.norm(2**13, 10e-3, iterations=20)
        assert 1.05 < n < 1.15

    def test_2_15_unaffected_up_to_1s(self):
        n = self.norm(2**15, 1.0, iterations=5)
        assert n < 1.01


class TestSweepAndSurface:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_slack_sweep(
            matrix_sizes=(512, 2048),
            slack_values_s=(1e-6, 1e-4, 1e-2),
            threads=(1, 2),
            iterations=30,
        )

    def test_sweep_covers_grid(self, sweep):
        assert len(sweep.points) == 2 * 3 * 2
        assert sweep.matrix_sizes() == [512, 2048]
        assert sweep.thread_counts() == [1, 2]

    def test_sweep_get_and_series(self, sweep):
        p = sweep.get(512, 1, 1e-4)
        assert p.matrix_size == 512
        series = sweep.series(512, 1)
        assert [q.slack_s for q in series] == [1e-6, 1e-4, 1e-2]
        with pytest.raises(KeyError):
            sweep.get(999, 1, 1e-4)

    def test_sweep_skips_oom_configs(self):
        result = run_slack_sweep(
            matrix_sizes=(2**15,),
            slack_values_s=(1e-6,),
            threads=(4,),
            iterations=5,
        )
        assert len(result.points) == 0
        assert len(result.skipped) == 1
        assert result.skipped[0][:2] == (2**15, 4)

    def test_surface_penalty_zero_at_zero_slack(self, sweep):
        surface = SlackResponseSurface(sweep)
        assert surface.penalty(512, 0.0) == 0.0

    def test_surface_interpolates_between_grid_points(self, sweep):
        surface = SlackResponseSurface(sweep)
        lo = surface.penalty(512, 1e-4)
        mid = surface.penalty(512, 1e-3)
        hi = surface.penalty(512, 1e-2)
        assert lo <= mid <= hi

    def test_surface_clamps_above_grid(self, sweep):
        surface = SlackResponseSurface(sweep)
        assert surface.penalty(512, 1.0) == surface.penalty(512, 1e-2)

    def test_surface_linear_below_grid(self, sweep):
        surface = SlackResponseSurface(sweep)
        tiny = surface.penalty(512, 1e-7)
        at_grid = surface.penalty(512, 1e-6)
        assert tiny == pytest.approx(at_grid / 10, rel=0.01)

    def test_surface_unknown_size_rejected(self, sweep):
        surface = SlackResponseSurface(sweep)
        with pytest.raises(KeyError):
            surface.penalty(4096, 1e-4)

    def test_surface_nearest_sizes(self, sweep):
        surface = SlackResponseSurface(sweep)
        assert surface.nearest_sizes(1000) == (512, 2048)
        assert surface.nearest_sizes(512) == (512, 512)
        assert surface.nearest_sizes(10) == (512, 512)
        assert surface.nearest_sizes(10**9) == (2048, 2048)

    def test_surface_thread_fallback(self, sweep):
        surface = SlackResponseSurface(sweep)
        # threads=8 not measured; falls back to nearest (2).
        assert surface.penalty(512, 1e-4, threads=8) == surface.penalty(
            512, 1e-4, threads=2
        )

    def test_surface_json_roundtrip(self, sweep, tmp_path):
        surface = SlackResponseSurface(sweep)
        path = tmp_path / "surface.json"
        surface.to_json(path)
        loaded = SlackResponseSurface.from_json(path)
        assert loaded.matrix_sizes() == surface.matrix_sizes()
        assert loaded.penalty(512, 1e-4) == pytest.approx(
            surface.penalty(512, 1e-4)
        )

    def test_empty_sweep_rejected(self):
        from repro.proxy import SweepResult

        with pytest.raises(ValueError):
            SlackResponseSurface(SweepResult())

    def test_negative_slack_rejected(self, sweep):
        surface = SlackResponseSurface(sweep)
        with pytest.raises(ValueError):
            surface.penalty(512, -1e-6)


@settings(max_examples=20, deadline=None)
@given(
    kernel_time=st.floats(min_value=1e-6, max_value=100.0,
                          allow_nan=False, allow_infinity=False)
)
def test_calibration_always_within_bounds(kernel_time):
    """Property: iteration count always lands in [floor, ceiling]."""
    n = calibrate_iterations(kernel_time)
    assert ITERATION_FLOOR <= n <= ITERATION_CEILING


class TestOffsetAndSpacingControls:
    """The paper's control experiments (Section IV-B): thread-launch
    offsets and iteration spacing show no correlation with the slack
    penalty."""

    @staticmethod
    def residual(offset=0.0, spacing=0.0, slack=1e-3):
        """Absolute starvation residual per iteration (seconds).

        The quantity slack actually adds beyond its direct delay —
        normalizing would conflate the control knobs' effect on the
        *baseline* length with their (absent) effect on starvation.
        """
        cfg = ProxyConfig(
            matrix_size=512, threads=2, iterations=30,
            thread_launch_offset_s=offset, iteration_spacing_s=spacing,
        )
        base = run_proxy(cfg)
        run = run_proxy(cfg, SlackModel(slack))
        return (run.corrected_runtime_s - base.loop_runtime_s) / 30

    def test_thread_offset_uncorrelated(self):
        r0 = self.residual(offset=0.0)
        r1 = self.residual(offset=200e-6)
        # "No correlation": the offset moves the residual by far less
        # than the residual itself.
        assert abs(r1 - r0) < 0.35 * max(r0, r1)

    def test_iteration_spacing_uncorrelated(self):
        r0 = self.residual(spacing=0.0)
        r1 = self.residual(spacing=500e-6)
        assert abs(r1 - r0) < 0.35 * max(r0, r1)

    def test_offset_delays_wall_clock_but_not_penalty_shape(self):
        cfg = ProxyConfig(matrix_size=512, threads=4, iterations=5,
                          thread_launch_offset_s=1e-3)
        res = run_proxy(cfg)
        # Thread 3 starts 3 ms late; the loop cannot finish before that.
        assert res.loop_runtime_s > 3e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            ProxyConfig(thread_launch_offset_s=-1.0)
        with pytest.raises(ValueError):
            ProxyConfig(iteration_spacing_s=-1.0)


class TestSweepNearMissLookup:
    """SweepResult.get resolves float-close slacks via an O(1) index."""

    def _result_with(self, slacks):
        from repro.proxy import SweepPoint, SweepResult

        result = SweepResult()
        for s in slacks:
            result.add(
                SweepPoint(
                    matrix_size=512, threads=1, slack_s=s,
                    loop_runtime_s=1.0, corrected_runtime_s=1.0,
                    baseline_runtime_s=1.0, iterations=10,
                    kernel_time_s=1e-3,
                )
            )
        return result

    @given(
        slack=st.floats(min_value=1e-7, max_value=1e-1,
                        allow_nan=False, allow_infinity=False),
        rel=st.floats(min_value=-0.9e-9, max_value=0.9e-9),
    )
    @settings(max_examples=200, deadline=None)
    def test_within_tolerance_resolves(self, slack, rel):
        result = self._result_with([slack])
        probe = slack * (1.0 + rel)
        assert result.get(512, 1, probe).slack_s == slack

    @given(
        slack=st.floats(min_value=1e-7, max_value=1e-1,
                        allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_outside_tolerance_raises(self, slack):
        result = self._result_with([slack])
        # Clear both tolerance terms: the 1e-9 relative part and the
        # 1e-12 absolute floor (which dominates for small slacks).
        probe = slack + max(slack * 1e-6, 1e-11)
        with pytest.raises(KeyError):
            result.get(512, 1, probe)

    def test_paper_grid_near_misses(self):
        from repro.proxy import PAPER_SLACK_VALUES_S

        result = self._result_with(PAPER_SLACK_VALUES_S)
        for s in PAPER_SLACK_VALUES_S:
            # A decimal round-trip through 12 significant digits is the
            # classic near-miss source (JSON files written by hand).
            probe = float(f"{s:.12g}")
            assert result.get(512, 1, probe).slack_s == s


class TestHoistedCalibration:
    def test_sweep_points_carry_shared_calibration(self):
        # Auto-calibrated sweep: calibration runs once per matrix size
        # in the sweep layer and every point carries its values.
        sweep = run_slack_sweep(
            matrix_sizes=(512,),
            slack_values_s=(1e-5,),
            threads=(1,),
            iterations=None,
        )
        kt = time_single_kernel(512)
        p = sweep.get(512, 1, 1e-5)
        assert p.kernel_time_s == kt
        assert p.iterations == calibrate_iterations(kt)

    def test_fastforward_counters_published(self):
        from repro.obs import collecting, get_registry

        with collecting():
            run_slack_sweep(
                matrix_sizes=(512,),
                slack_values_s=(1e-5,),
                threads=(1,),
                iterations=30,
            )
            reg = get_registry()
            # Baseline + one slack point, both certified.
            assert reg.counter("proxy.fastforward.hits").value == 2
            assert reg.counter("proxy.fastforward.fallbacks").value == 0
            assert reg.counter("proxy.fastforward.events_skipped").value > 0

    def test_no_fast_forward_sweep_is_identical(self):
        kwargs = dict(
            matrix_sizes=(512,),
            slack_values_s=(1e-5, 1e-3),
            threads=(2,),
            iterations=30,
        )
        fast = run_slack_sweep(**kwargs)
        full = run_slack_sweep(fast_forward=False, **kwargs)
        assert fast.points == full.points
