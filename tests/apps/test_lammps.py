"""Tests for the LAMMPS workload model: LJ sizing, scaling, profiling."""

import pytest

from repro.apps.lammps import (
    LJParams,
    LammpsProfileConfig,
    LammpsScalingModel,
    PAPER_BOX_SIZES,
    profile_lammps,
)
from repro.hw import MiB


class TestLJParams:
    def test_default_box_atom_count(self):
        assert LJParams(20).atoms == 32_000

    def test_cubic_scaling(self):
        # Table I: box 80 -> 2,048k; box 100 -> 4,000k; box 120 -> 6,912k.
        assert LJParams(80).atoms == 2_048_000
        assert LJParams(100).atoms == 4_000_000
        assert LJParams(120).atoms == 6_912_000

    def test_box60_uses_cubic_rule(self):
        # 3^3 x 32k (the paper's Table I lists 288k, an internal typo —
        # see EXPERIMENTS.md).
        assert LJParams(60).atoms == 864_000

    def test_atoms_per_process(self):
        assert LJParams(120).atoms_per_process(8) == pytest.approx(864_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            LJParams(0)
        with pytest.raises(ValueError):
            LJParams(25)  # not a multiple of the unit box
        with pytest.raises(ValueError):
            LJParams(20, steps=0)
        with pytest.raises(ValueError):
            LJParams(20).atoms_per_process(0)


class TestScalingModel:
    @pytest.fixture
    def model(self):
        return LammpsScalingModel()

    # Table I anchors (paper values; box 60 carries the paper's typo
    # and its measured runtime is ~6% off the linear trend).
    @pytest.mark.parametrize(
        "box,paper_runtime,tol",
        [(20, 5.473, 0.02), (60, 66.523, 0.07), (80, 160.703, 0.02),
         (100, 312.185, 0.02), (120, 541.452, 0.02)],
    )
    def test_table1_runtimes(self, model, box, paper_runtime, tol):
        t = model.runtime(LJParams(box))
        assert t == pytest.approx(paper_runtime, rel=tol)

    def test_box60_sees_17pct_gain_at_8_procs(self, model):
        # Paper: "8 processes seeing a decrease in runtime of 17.2%".
        r = model.normalized_runtime(LJParams(60), 8)
        assert r == pytest.approx(0.828, abs=0.02)

    def test_box120_sees_56pct_gain_at_24_procs(self, model):
        # Paper: "-55.6% at 24 processes".
        r = model.normalized_runtime(LJParams(120), 24)
        assert r == pytest.approx(0.444, abs=0.03)

    def test_box120_diminishing_after_16(self, model):
        r16 = model.normalized_runtime(LJParams(120), 16)
        r24 = model.normalized_runtime(LJParams(120), 24)
        assert abs(r24 - r16) < 0.05

    def test_box20_degrades_with_procs(self, model):
        # Small problem: comm overhead beats parallel speedup.
        series = [model.normalized_runtime(LJParams(20), p)
                  for p in (1, 2, 4, 8, 16, 24)]
        assert all(b > a for a, b in zip(series, series[1:]))
        assert series[-1] > 5.0

    def test_openmp_gain_box120(self, model):
        # Paper: -52.3% at 6 threads vs 1 (8 procs), aggregate -76.4%.
        p = LJParams(120)
        romp = model.runtime(p, 8, 6) / model.runtime(p, 8, 1)
        agg = model.runtime(p, 8, 6) / model.runtime(p, 1, 1)
        assert romp == pytest.approx(0.477, abs=0.03)
        assert agg == pytest.approx(0.236, abs=0.03)

    def test_larger_boxes_need_more_cpu(self, model):
        # The paper's general trend: bigger problems benefit from more
        # processes; best process count grows with box size.
        best20 = model.best_process_count(LJParams(20))
        best120 = model.best_process_count(LJParams(120))
        assert best20 == 1
        assert best120 >= 8

    def test_box200_benefits_from_48_cores(self, model):
        # Paper: box 200 (GPU memory saturated) still gains from 48
        # cores over 24.
        p = LJParams(200)
        t48 = model.runtime(p, 24, 2)
        t24 = model.runtime(p, 12, 2)
        assert t48 < t24

    def test_steps_scale_work_linearly(self, model):
        short = model.runtime(LJParams(120, steps=500))
        full = model.runtime(LJParams(120, steps=5000))
        assert (full - model.setup_s) == pytest.approx(
            10 * (short - model.setup_s)
        )

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.runtime(LJParams(20), processes=0)
        with pytest.raises(ValueError):
            model.thread_efficiency(0)
        with pytest.raises(ValueError):
            LammpsScalingModel(cpu_fraction=1.5)


class TestLammpsProfiling:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_lammps(
            LammpsProfileConfig(params=LJParams(120, steps=100))
        )

    def test_queue_parallelism_is_process_count(self, profile):
        assert profile.queue_parallelism == 8

    def test_kernel_count(self, profile):
        # Per step per rank: pair kernel; plus neighbour builds every
        # 17 steps: 100 steps -> 6 builds per rank.
        kernels = profile.trace.kernels()
        assert len(kernels) == 8 * (100 + 6)

    def test_memcpy_counts_and_directions(self, profile):
        copies = profile.trace.memcpys()
        # positions H2D + forces D2H per rank-step, + neighbour H2D.
        assert len(copies) == 8 * (2 * 100 + 6)
        from repro.trace import CopyKind

        h2d = profile.trace.memcpys(CopyKind.H2D)
        d2h = profile.trace.memcpys(CopyKind.D2H)
        assert len(h2d) == 8 * (100 + 6)
        assert len(d2h) == 8 * 100

    def test_transfer_sizes_match_table3_bins(self, profile):
        # Box 120 / 8 ranks: positions ~9.9 MiB -> (1,16] bin, forces
        # ~19.8 MiB -> (16,256] bin, neighbour metadata < 1 MiB.
        sizes = profile.trace.memcpys().sizes() / MiB
        small = (sizes <= 1).sum()
        mid = ((sizes > 1) & (sizes <= 16)).sum()
        large = ((sizes > 16) & (sizes <= 256)).sum()
        assert small == 8 * 6
        assert mid == 8 * 100
        assert large == 8 * 100
        assert sizes.max() < 256

    def test_mean_transfer_size_near_paper(self, profile):
        # Paper Table III: LAMMPS mean 16.85 MiB.
        mean = profile.trace.memcpys().sizes().mean() / MiB
        assert 10 < mean < 20

    def test_cpu_heavy_gpu_utilization(self, profile):
        # LAMMPS is CPU-dominant: GPU kernels cover a minority of the
        # runtime.
        frac = profile.trace.kernels().runtime_fraction(profile.runtime_s)
        assert frac < 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LammpsProfileConfig(processes=0)
        with pytest.raises(ValueError):
            LammpsProfileConfig(jitter=1.5)
        with pytest.raises(ValueError):
            LammpsProfileConfig(neighbor_every=0)


class TestGpuMemoryFootprint:
    def test_box_200_saturates_a100(self):
        # Paper: "an additional test was run at a box size of 200 as
        # this saturated the GPU's memory".
        p200 = LJParams(200)
        assert p200.fits_gpu()
        assert p200.gpu_memory_bytes() > 0.9 * 40 * 1024**3

    def test_next_box_up_does_not_fit(self):
        assert not LJParams(220).fits_gpu()

    def test_paper_sweep_boxes_fit_comfortably(self):
        from repro.apps.lammps import PAPER_BOX_SIZES

        for box in PAPER_BOX_SIZES:
            assert LJParams(box).gpu_memory_bytes() < 0.25 * 40 * 1024**3

    def test_validation(self):
        with pytest.raises(ValueError):
            LJParams(120).gpu_memory_bytes(bytes_per_atom=0)
