"""Benchmark: regenerate the Section IV-A OpenMP scaling results."""

from repro.experiments import run_experiment


def test_bench_omp_scaling(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("omp_scaling", ctx), rounds=3, iterations=1
    )
    print_result(result)
    measured = result.tables[0].column("measured")
    assert abs(float(measured[0].split("%")[0]) - 52.3) < 4
    assert abs(float(measured[1].split("%")[0]) - 76.4) < 4
