"""Shared slack quantization: one rounding rule for every slack index.

Three layers index measurements by their slack value and must agree on
when two floats name *the same* grid point:

* :meth:`repro.proxy.SweepResult.get` resolves near-miss lookups
  through a rounded-slack secondary index;
* :class:`repro.proxy.SlackResponseSurface` groups sweep points into
  per-``(matrix_size, threads)`` series keyed by slack;
* the serving surrogate (:mod:`repro.model.surrogate` /
  :mod:`repro.serve`) extracts training grids from either of the two.

Historically the first used a 7-significant-digit bucket while the
second kept raw floats, so a slack value sitting within the near-miss
tolerance of a measured point resolved to that point through
``SweepResult.get`` but interpolated (or grew a duplicate series
entry) through the surface — a genuine boundary disagreement once
adaptive sweeps started synthesizing points from float arithmetic.
This module is now the single source of truth for all three.

The contract: two slack values are the same grid point iff they are
within :func:`slack_tolerance` of each other, and
:func:`slack_bucket` quantizes such that any pair within tolerance
shares a bucket with at least one of the three probe values
(``s``, ``s - tol``, ``s + tol``) — rounding is monotone and the
bucket width dwarfs the tolerance, so the probes cover every boundary
crossing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "slack_bucket",
    "slack_tolerance",
    "bucket_probes",
    "same_slack",
    "snap_slack",
    "dedupe_slacks",
]


def slack_bucket(slack_s: float) -> str:
    """Rounded-slack index key (7 significant digits)."""
    return f"{slack_s:.6e}"


def slack_tolerance(slack_s: float) -> float:
    """Absolute tolerance under which two slack values are one point.

    ``1e-12 + 1e-9 * |slack|``: a femtosecond-scale floor plus a
    relative term nine orders below the value — far above float64
    noise from grid arithmetic, far below any physically distinct
    slack on the dyadic tick grid.
    """
    return 1e-12 + 1e-9 * abs(slack_s)


def bucket_probes(slack_s: float) -> Tuple[float, float, float]:
    """The three probe values whose buckets cover every near-miss."""
    tol = slack_tolerance(slack_s)
    return (slack_s, slack_s - tol, slack_s + tol)


def same_slack(a: float, b: float) -> bool:
    """Whether two slack values name the same grid point."""
    return abs(a - b) <= slack_tolerance(max(abs(a), abs(b)))


def snap_slack(slack_s: float, grid: Iterable[float]) -> Optional[float]:
    """The grid value ``slack_s`` quantizes to, or ``None``.

    ``grid`` is scanned for the closest value; a match is returned
    only when it is within :func:`slack_tolerance`. Callers with a
    sorted numpy grid should bracket via ``searchsorted`` and test the
    two neighbours with :func:`same_slack` instead — this helper is
    the small-grid convenience form.
    """
    best: Optional[float] = None
    best_gap = float("inf")
    for value in grid:
        gap = abs(value - slack_s)
        if gap < best_gap:
            best, best_gap = value, gap
    if best is not None and best_gap <= slack_tolerance(slack_s):
        return best
    return None


def dedupe_slacks(slacks: Iterable[float]) -> List[float]:
    """Sorted slack values with same-bucket duplicates collapsed.

    The *first* spelling of each bucket wins (matching the measured
    point that was recorded first); order of the result is ascending.
    """
    canonical: Dict[str, float] = {}
    for s in slacks:
        canonical.setdefault(slack_bucket(s), s)
    return sorted(canonical.values())
