"""Table I: LAMMPS LJ box sizes, atom counts and single-core runtimes."""

from __future__ import annotations

from ..apps.lammps import LJParams, LammpsScalingModel, PAPER_BOX_SIZES
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run", "PAPER_TABLE1_RUNTIMES"]

#: The paper's published Table I runtimes (seconds, 1 proc / 1 thread).
PAPER_TABLE1_RUNTIMES = {20: 5.473, 60: 66.523, 80: 160.703, 100: 312.185,
                         120: 541.452}


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce Table I from the calibrated scaling model."""
    model = LammpsScalingModel()
    table = Table(
        title="Table I: LAMMPS box sizes at 1 process / 1 thread",
        headers=["Box Size", "Total Atoms", "Runtime [s]", "Paper [s]",
                 "Delta %"],
    )
    for box in PAPER_BOX_SIZES:
        params = LJParams(box)
        runtime = model.runtime(params)
        paper = PAPER_TABLE1_RUNTIMES[box]
        table.add_row(
            box,
            params.atoms,
            round(runtime, 3),
            paper,
            round(100 * (runtime / paper - 1), 1),
        )
    table.notes.append(
        "box 60 atom count follows the cubic rule (864k); the paper's "
        "288k entry is inconsistent with its own 3x3x3 description and "
        "with the linear runtime trend of the other rows"
    )
    return ExperimentResult(experiment_id="table1", tables=[table])
