"""rowscale-cdi: reproduction of "Examining the Viability of Row-Scale
Disaggregation for Production Applications" (Shorts & Grant, SC 2024).

A discrete-event GPU/network simulator, the paper's slack-injection
proxy methodology, mechanistic LAMMPS and CosmoFlow workload models,
and the analytic slack-penalty prediction model (Equations 1-3) —
plus per-table/figure experiment runners.

Quickstart
----------
>>> from repro import ProxyConfig, run_proxy, SlackModel
>>> base = run_proxy(ProxyConfig(matrix_size=4096, iterations=10))
>>> slowed = run_proxy(ProxyConfig(matrix_size=4096, iterations=10),
...                    SlackModel(100e-6))
>>> penalty = slowed.corrected_runtime_s / base.loop_runtime_s - 1

See ``examples/`` for complete scenarios and ``repro.experiments`` for
the per-paper-artifact runners. The *supported* import surface — the
names covered by the deprecation policy — is :mod:`repro.api`.
"""

from .apps import (
    CosmoFlowProfileConfig,
    LammpsProfileConfig,
    LammpsScalingModel,
    LJParams,
    profile_cosmoflow,
    profile_lammps,
)
from .des import Environment
from .experiments import ExperimentContext, run_all, run_experiment
from .gpusim import CudaRuntime, KernelSpec, matmul_kernel
from .hw import A100_SXM4_40GB, EPYC_7413, GPUSpec, NARVAL_NODE, NodeSpec
from .model import CDIProfiler, SlackPrediction
from .obs import (
    MetricsRegistry,
    RunReport,
    collecting,
    disable_metrics,
    enable_metrics,
    get_registry,
)
from .parallel import PointCache, SweepExecutor
from .network import (
    Fabric,
    FabricSpec,
    SlackModel,
    fibre_distance_for_latency,
    latency_for_fibre_distance,
)
from .proxy import (
    ProxyConfig,
    ProxyResult,
    SlackResponseSurface,
    run_proxy,
    run_slack_sweep,
)
from .trace import Trace, Tracer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Environment",
    "CudaRuntime",
    "KernelSpec",
    "matmul_kernel",
    "GPUSpec",
    "NodeSpec",
    "A100_SXM4_40GB",
    "EPYC_7413",
    "NARVAL_NODE",
    "SlackModel",
    "Fabric",
    "FabricSpec",
    "fibre_distance_for_latency",
    "latency_for_fibre_distance",
    "Trace",
    "Tracer",
    "ProxyConfig",
    "ProxyResult",
    "run_proxy",
    "run_slack_sweep",
    "SweepExecutor",
    "PointCache",
    "SlackResponseSurface",
    "LJParams",
    "LammpsScalingModel",
    "LammpsProfileConfig",
    "profile_lammps",
    "CosmoFlowProfileConfig",
    "profile_cosmoflow",
    "CDIProfiler",
    "SlackPrediction",
    "ExperimentContext",
    "run_experiment",
    "run_all",
    "MetricsRegistry",
    "RunReport",
    "enable_metrics",
    "disable_metrics",
    "get_registry",
    "collecting",
]
